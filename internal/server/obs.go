package server

import (
	"net/http"
	"runtime/debug"
	"strconv"

	"indoorpath/internal/obs"
)

// This file is the server side of the observability surface: GET
// /tracez (with server-side filters), GET /loadz, build provenance,
// and the consistent stats snapshot shared by /statsz and /metricsz.

// handleTracez serves the retained recent traces: the slowest-K first
// (descending duration), then the 1-in-N sampled population newest
// first. The ring is bounded, so the response is too. Filters narrow
// the listing server-side — ?venue=, ?method=, ?outcome= match
// exactly, ?min_ms= keeps traces at or above the duration — and
// unknown parameters are a hard 400: a typoed filter silently matching
// everything is exactly how slow-trace triage goes wrong.
func (s *Server) handleTracez(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	for k := range q {
		switch k {
		case "venue", "method", "min_ms", "outcome":
		default:
			writeError(w, http.StatusBadRequest,
				badRequest("unknown query parameter %q (supported: venue, method, min_ms, outcome)", k))
			return
		}
	}
	venue, method, outcome := q.Get("venue"), q.Get("method"), q.Get("outcome")
	var minMs float64
	if v := q.Get("min_ms"); v != "" {
		var err error
		if minMs, err = strconv.ParseFloat(v, 64); err != nil || minMs < 0 {
			writeError(w, http.StatusBadRequest, badRequest("bad \"min_ms\": want a non-negative number, got %q", v))
			return
		}
	}
	switch outcome {
	case "", obs.OutcomeOK, obs.OutcomeNoRoute, obs.OutcomeError, obs.OutcomeTimeout, obs.OutcomeClientGone:
	default:
		writeError(w, http.StatusBadRequest, badRequest("bad \"outcome\": %q (want ok, no_route, error, timeout or client_gone)", outcome))
		return
	}

	traces := []*obs.TraceDoc{}
	for _, d := range s.obsv.Traces() {
		if (venue != "" && d.Venue != venue) ||
			(method != "" && d.Method != method) ||
			(outcome != "" && d.Outcome != outcome) ||
			d.DurationMs < minMs {
			continue
		}
		traces = append(traces, d)
	}
	writeJSON(w, http.StatusOK, TracezResponse{Count: len(traces), Traces: traces})
}

// scopeFilter is a validated ?venue=/?method= narrowing of a
// fleet-wide introspection endpoint (/statsz, /loadz, /cachez). Empty
// fields match everything.
type scopeFilter struct {
	venue  string
	method string
}

func (f scopeFilter) matchVenue(id string) bool { return f.venue == "" || f.venue == id }
func (f scopeFilter) matchMethod(m string) bool { return f.method == "" || f.method == m }

// parseScopeFilter validates the shared ?venue= / ?method= query
// parameters, mirroring the /tracez filter semantics: unknown
// parameters are a hard 400, and — stricter than /tracez, whose
// filters match free-form trace labels — so are unregistered venues
// and unknown pooled methods. A typoed filter silently matching
// everything (or nothing) is exactly how scrape triage goes wrong.
// Reports ok=false after writing the error response itself.
func (s *Server) parseScopeFilter(w http.ResponseWriter, r *http.Request) (scopeFilter, bool) {
	q := r.URL.Query()
	for k := range q {
		switch k {
		case "venue", "method":
		default:
			writeError(w, http.StatusBadRequest,
				badRequest("unknown query parameter %q (supported: venue, method)", k))
			return scopeFilter{}, false
		}
	}
	f := scopeFilter{venue: q.Get("venue"), method: q.Get("method")}
	if f.venue != "" {
		if _, ok := s.reg.Get(f.venue); !ok {
			writeError(w, http.StatusBadRequest, badRequest("unknown venue %q", f.venue))
			return scopeFilter{}, false
		}
	}
	switch f.method {
	case "", methodSyn, methodAsyn, methodStatic:
	default:
		writeError(w, http.StatusBadRequest,
			badRequest("unknown method %q (want syn, asyn or static)", f.method))
		return scopeFilter{}, false
	}
	return f, true
}

// handleLoadz serves the rolling load signals: per venue and method,
// the windowed (10s/1m/5m) arrival, hit, shareability and
// hold-utilization view from the pool load rings. Each venue/method's
// windows come from one single-pass ring read (loadSnapshots), so a
// body's windows are mutually consistent and each individually
// satisfies exact+window+dedup <= queries. Supports the shared strict
// ?venue=/?method= filters.
func (s *Server) handleLoadz(w http.ResponseWriter, r *http.Request) {
	f, ok := s.parseScopeFilter(w, r)
	if !ok {
		return
	}
	venues := s.reg.Venues()
	resp := LoadzResponse{
		WindowsSec: obs.LoadWindows,
		Venues:     make(map[string]map[string][]LoadWindowDoc, len(venues)),
	}
	for i, per := range loadSnapshots(venues) {
		if !f.matchVenue(venues[i].ID()) {
			continue
		}
		methods := make(map[string][]LoadWindowDoc, len(per))
		for name, samples := range per {
			if !f.matchMethod(name) {
				continue
			}
			docs := make([]LoadWindowDoc, len(samples))
			for wi, smp := range samples {
				docs[wi] = loadWindowDoc(obs.LoadWindows[wi], smp)
			}
			methods[name] = docs
		}
		resp.Venues[venues[i].ID()] = methods
	}
	writeJSON(w, http.StatusOK, resp)
}

// loadSnapshots reads every venue's per-method load rings once:
// element i holds venue i's method -> one obs.LoadSample per
// obs.LoadWindows entry. The single Windows call per pool is the
// scrape discipline — /loadz and /metricsz bodies are each internally
// consistent because no ring is read twice within one snapshot.
func loadSnapshots(venues []*Venue) []map[string][]obs.LoadSample {
	out := make([]map[string][]obs.LoadSample, len(venues))
	for i, ve := range venues {
		per := make(map[string][]obs.LoadSample, len(pooledMethods))
		for _, m := range pooledMethods {
			per[methodName(m)] = ve.Pool(m).LoadRing().Windows(obs.LoadWindows)
		}
		out[i] = per
	}
	return out
}

// loadWindowDoc derives the wire view of one windowed sample.
func loadWindowDoc(windowSec int, s obs.LoadSample) LoadWindowDoc {
	ratio := func(num, den int64) float64 {
		if den == 0 {
			return 0
		}
		return float64(num) / float64(den)
	}
	doc := LoadWindowDoc{
		WindowSec:        windowSec,
		Queries:          s.Queries,
		ExactHits:        s.ExactHits,
		WindowHits:       s.WindowHits,
		SkeletonHits:     s.SkeletonHits,
		Deduped:          s.Deduped,
		SharedAnswers:    s.SharedAnswers,
		EngineSearches:   s.EngineSearches,
		Flushes:          s.Flushes,
		FlushedQueries:   s.FlushedQueries,
		ArrivalPerSec:    ratio(s.Queries, int64(windowSec)),
		ExactHitRate:     ratio(s.ExactHits, s.Queries),
		WindowHitRate:    ratio(s.WindowHits, s.Queries),
		SkeletonHitRate:  ratio(s.SkeletonHits, s.Queries),
		Shareability:     ratio(s.Deduped+s.SharedAnswers, s.Queries),
		SearchesPerQuery: ratio(s.EngineSearches, s.Queries),
		HoldUtilization:  ratio(s.HoldNanos, s.HoldTargetNanos),
		FlushFanout:      ratio(s.FlushedQueries, s.Flushes),
	}
	addReason := func(m map[string]int64, r obs.Reason, v int64) map[string]int64 {
		if v == 0 {
			return m
		}
		if m == nil {
			m = make(map[string]int64)
		}
		m[r.String()] = v
		return m
	}
	doc.MissReasons = addReason(doc.MissReasons, obs.ReasonUncacheable, s.MissUncacheable)
	doc.MissReasons = addReason(doc.MissReasons, obs.ReasonNoExactEntry, s.MissNoExactEntry)
	doc.MissReasons = addReason(doc.MissReasons, obs.ReasonWindowFamilyAbsent, s.MissFamilyAbsent)
	doc.MissReasons = addReason(doc.MissReasons, obs.ReasonOutsideWindows, s.MissOutsideWindows)
	doc.MissReasons = addReason(doc.MissReasons, obs.ReasonSkeletonUncertified, s.MissSkeletonUncertified)
	doc.MissReasons = addReason(doc.MissReasons, obs.ReasonEpochRaced, s.MissEpochRaced)
	doc.SoloReasons = addReason(doc.SoloReasons, obs.ReasonPrivatePartition, s.SoloPrivate)
	doc.SoloReasons = addReason(doc.SoloReasons, obs.ReasonSingletonGroup, s.SoloSingleton)
	doc.SoloReasons = addReason(doc.SoloReasons, obs.ReasonAblation, s.SoloAblation)
	return doc
}

// readBuildInfo derives the server's build provenance once. The VCS
// settings are only stamped into main-package builds from a repository
// checkout; everything stays best-effort (empty fields, not errors).
func readBuildInfo() BuildInfoDoc {
	bi, ok := debug.ReadBuildInfo()
	if !ok {
		return BuildInfoDoc{}
	}
	doc := BuildInfoDoc{GoVersion: bi.GoVersion, Module: bi.Main.Path}
	for _, st := range bi.Settings {
		switch st.Key {
		case "vcs.revision":
			doc.Revision = st.Value
		case "vcs.time":
			doc.Time = st.Value
		case "vcs.modified":
			doc.Dirty = st.Value == "true"
		}
	}
	return doc
}

// statsSnapshot is one scrape's view of every counter the server
// exposes. /statsz and /metricsz render the same snapshot, so the two
// endpoints cannot disagree within one scrape, and each venue's
// counters are read exactly once per scrape (one ve.Stats() call per
// venue — epoch and pool counters come from the same read).
type statsSnapshot struct {
	venues   []*Venue
	docs     []VenueStatsDoc               // aligned with venues
	loads    []map[string][]obs.LoadSample // aligned with venues; method -> per-LoadWindows sample
	requests map[obs.RequestKey]obs.HistogramSnapshot
	stages   map[string]obs.HistogramSnapshot
	server   ServerStatsDoc
}

// snapshotStats collects one consistent scrape. Individual counters
// are independent atomics, so a snapshot taken under concurrent
// traffic can be torn between counters — but the per-pool read order
// inside service.Stats guarantees the serving-partition invariant
// (cache_hits + window_hits + deduped + misses == queries, misses >=
// engine-run lower bound) holds in every snapshot regardless.
func (s *Server) snapshotStats() statsSnapshot {
	venues := s.reg.Venues()
	sn := statsSnapshot{
		venues:   venues,
		docs:     make([]VenueStatsDoc, len(venues)),
		loads:    loadSnapshots(venues),
		requests: s.obsv.RequestSnapshots(),
		stages:   s.obsv.StageSnapshots(),
		server:   ServerStatsDoc{Timeouts: s.timeouts.Load(), ClientGone: s.clientGone.Load()},
	}
	for i, ve := range venues {
		doc := ve.Stats()
		doc.Coalesce = s.coalesceStats(ve)
		doc.Requests = venueRequestSnapshots(sn.requests, ve.ID())
		sn.docs[i] = doc
	}
	return sn
}

// venueRequestSnapshots extracts one venue's request-latency
// histograms from the full per-(venue, method, outcome) map, merged
// over outcomes so /statsz clients (internal/replay) see one
// histogram per method. Nil when the venue has not served a request.
func venueRequestSnapshots(all map[obs.RequestKey]obs.HistogramSnapshot, venueID string) map[string]obs.HistogramSnapshot {
	var out map[string]obs.HistogramSnapshot
	for k, snap := range all {
		if k.Venue != venueID {
			continue
		}
		if out == nil {
			out = make(map[string]obs.HistogramSnapshot)
		}
		out[k.Method] = out[k.Method].Add(snap)
	}
	return out
}
