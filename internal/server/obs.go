package server

import (
	"net/http"

	"indoorpath/internal/obs"
)

// This file is the server side of the observability surface: GET
// /tracez and the consistent stats snapshot shared by /statsz and
// /metricsz.

// handleTracez serves the retained recent traces: the slowest-K first
// (descending duration), then the 1-in-N sampled population newest
// first. The ring is bounded, so the response is too.
func (s *Server) handleTracez(w http.ResponseWriter, _ *http.Request) {
	traces := s.obsv.Traces()
	if traces == nil {
		traces = []*obs.TraceDoc{}
	}
	writeJSON(w, http.StatusOK, TracezResponse{Count: len(traces), Traces: traces})
}

// statsSnapshot is one scrape's view of every counter the server
// exposes. /statsz and /metricsz render the same snapshot, so the two
// endpoints cannot disagree within one scrape, and each venue's
// counters are read exactly once per scrape (one ve.Stats() call per
// venue — epoch and pool counters come from the same read).
type statsSnapshot struct {
	venues   []*Venue
	docs     []VenueStatsDoc // aligned with venues
	requests map[obs.RequestKey]obs.HistogramSnapshot
	stages   map[string]obs.HistogramSnapshot
	server   ServerStatsDoc
}

// snapshotStats collects one consistent scrape. Individual counters
// are independent atomics, so a snapshot taken under concurrent
// traffic can be torn between counters — but the per-pool read order
// inside service.Stats guarantees the serving-partition invariant
// (cache_hits + window_hits + deduped + misses == queries, misses >=
// engine-run lower bound) holds in every snapshot regardless.
func (s *Server) snapshotStats() statsSnapshot {
	venues := s.reg.Venues()
	sn := statsSnapshot{
		venues:   venues,
		docs:     make([]VenueStatsDoc, len(venues)),
		requests: s.obsv.RequestSnapshots(),
		stages:   s.obsv.StageSnapshots(),
		server:   ServerStatsDoc{Timeouts: s.timeouts.Load(), ClientGone: s.clientGone.Load()},
	}
	for i, ve := range venues {
		doc := ve.Stats()
		doc.Coalesce = s.coalesceStats(ve)
		doc.Requests = venueRequestSnapshots(sn.requests, ve.ID())
		sn.docs[i] = doc
	}
	return sn
}

// venueRequestSnapshots extracts one venue's request-latency
// histograms from the full per-(venue, method, outcome) map, merged
// over outcomes so /statsz clients (internal/replay) see one
// histogram per method. Nil when the venue has not served a request.
func venueRequestSnapshots(all map[obs.RequestKey]obs.HistogramSnapshot, venueID string) map[string]obs.HistogramSnapshot {
	var out map[string]obs.HistogramSnapshot
	for k, snap := range all {
		if k.Venue != venueID {
			continue
		}
		if out == nil {
			out = make(map[string]obs.HistogramSnapshot)
		}
		out[k.Method] = out[k.Method].Add(snap)
	}
	return out
}
