// Fuzz coverage for the HTTP wire decoding/validation layer, which
// until now only had example-based tests. The targets mirror the
// server's own decode path (strict JSON, unknown fields rejected) and
// then assert the validation invariants the handlers rely on: a nil
// ErrorDoc from RouteRequest.query means a well-formed core.Query.
package server

import (
	"bytes"
	"encoding/json"
	"errors"
	"math"
	"testing"

	"indoorpath/internal/temporal"
)

// decodeStrict is Server.decodeBody's decoding discipline without the
// HTTP plumbing.
func decodeStrict(raw []byte, dst any) error {
	dec := json.NewDecoder(bytes.NewReader(raw))
	dec.DisallowUnknownFields()
	if err := dec.Decode(dst); err != nil {
		return err
	}
	if dec.More() {
		return errTrailing
	}
	return nil
}

var errTrailing = errors.New("trailing data after JSON body")

func FuzzDecodeRouteRequest(f *testing.F) {
	for _, seed := range []string{
		`{"from":{"x":30,"y":10,"floor":0},"to":{"x":5,"y":34,"floor":0},"at":"11:00"}`,
		`{"from":{"x":1,"y":2,"floor":-1},"to":{"x":3,"y":4,"floor":2},"at":"23:59:59","method":"syn","speed":2.5}`,
		`{"from":null,"to":null,"at":""}`,
		`{"at":"7:60"}`,
		`{"from":{"x":1e308,"y":-1e308,"floor":2147483647},"to":{"x":0,"y":0,"floor":0},"at":"24:00"}`,
		`{"from":{"x":0,"y":0,"floor":0},"to":{"x":0,"y":0,"floor":0},"at":"12:00","speed":-1}`,
		`{"from":{"x":0,"y":0,"floor":0},"to":{"x":0,"y":0,"floor":0},"at":"12:00","speed":1e999}`,
		`{"method":"waiting","from":{"x":1,"y":1,"floor":0},"to":{"x":2,"y":2,"floor":0},"at":"0:00"}`,
		`{"queries":[{"from":{"x":1,"y":1,"floor":0},"to":{"x":2,"y":2,"floor":0},"at":"9:30"}]}`,
		`{"queries":[],"method":"static"}`,
		`{"updates":{"ward-1-door":["10:00-18:00"],"gate":[]}}`,
		`{"preset":"office"}`,
		`{"dir":"/tmp/venues"}`,
		`[]`, `{}`, `null`, `0`, `"x"`, "{", `{"from":{}}{"to":{}}`,
	} {
		f.Add([]byte(seed))
	}
	f.Fuzz(func(t *testing.T, raw []byte) {
		// Every wire request struct must decode (or reject) without
		// panicking under the server's strict discipline.
		var br BatchRequest
		_ = decodeStrict(raw, &br)
		var sr SchedulesRequest
		_ = decodeStrict(raw, &sr)
		var vr VenuesLoadRequest
		_ = decodeStrict(raw, &vr)

		var req RouteRequest
		if err := decodeStrict(raw, &req); err != nil {
			return
		}
		q, errDoc := req.query()
		if errDoc != nil {
			if errDoc.Code != "bad_request" || errDoc.Message == "" {
				t.Fatalf("malformed error doc: %+v", errDoc)
			}
			return
		}
		// Validation accepted the request: the query must be the one the
		// engine contract expects.
		if req.From == nil || req.To == nil {
			t.Fatalf("query() accepted nil endpoints: %q", raw)
		}
		at, err := temporal.Parse(req.At)
		if err != nil {
			t.Fatalf("query() accepted unparseable at %q: %v", req.At, err)
		}
		if q.At != at {
			t.Fatalf("query() at = %v, want %v", q.At, at)
		}
		if q.At < 0 {
			t.Fatalf("negative time of day %v from %q", q.At, req.At)
		}
		if q.Speed < 0 || math.IsNaN(q.Speed) || math.IsInf(q.Speed, 0) {
			t.Fatalf("query() accepted bad speed %v", q.Speed)
		}
		if q.Source != req.From.point() || q.Target != req.To.point() {
			t.Fatalf("query() endpoints do not match the request")
		}
		// The method field must resolve or reject, never panic, in both
		// single-route and batch positions.
		if _, _, errDoc := parseMethod(req.Method, true); errDoc != nil && errDoc.Code != "bad_request" {
			t.Fatalf("parseMethod error doc: %+v", errDoc)
		}
		if _, _, errDoc := parseMethod(req.Method, false); errDoc != nil && errDoc.Code != "bad_request" {
			t.Fatalf("parseMethod error doc: %+v", errDoc)
		}
	})
}
