package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"indoorpath/internal/core"
	"indoorpath/internal/itgraph"
	"indoorpath/internal/model"
	"indoorpath/internal/service"
	"indoorpath/internal/synth"
	"indoorpath/internal/temporal"
)

// Hospital probe points (see synth.Hospital): the ER centre and the
// centre of ward-1, whose door follows visiting hours 10:00–12:00 and
// 14:00–18:00.
var (
	erCentre   = PointDoc{X: 30, Y: 10, Floor: 0}
	wardCentre = PointDoc{X: 5, Y: 34, Floor: 0}
)

func newTestServer(t testing.TB, opts Options) (*httptest.Server, *Registry) {
	t.Helper()
	reg := NewRegistry(service.Options{})
	if _, err := reg.AddPresets("hospital,office"); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(New(reg, opts))
	t.Cleanup(ts.Close)
	return ts, reg
}

func postJSON(t testing.TB, url string, body any) (*http.Response, []byte) {
	t.Helper()
	return doJSON(t, http.MethodPost, url, body)
}

func doJSON(t testing.TB, method, url string, body any) (*http.Response, []byte) {
	t.Helper()
	var buf bytes.Buffer
	if body != nil {
		if err := json.NewEncoder(&buf).Encode(body); err != nil {
			t.Fatal(err)
		}
	}
	req, err := http.NewRequest(method, url, &buf)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, raw
}

func getJSON(t testing.TB, url string, out any) *http.Response {
	t.Helper()
	resp, raw := doJSON(t, http.MethodGet, url, nil)
	if out != nil {
		if err := json.Unmarshal(raw, out); err != nil {
			t.Fatalf("decode %s: %v\n%s", url, err, raw)
		}
	}
	return resp
}

func decodeInto(t testing.TB, raw []byte, out any) {
	t.Helper()
	if err := json.Unmarshal(raw, out); err != nil {
		t.Fatalf("decode: %v\n%s", err, raw)
	}
}

// errCode extracts the error envelope code of a non-2xx body.
func errCode(t testing.TB, raw []byte) string {
	t.Helper()
	var envelope struct {
		Error *ErrorDoc `json:"error"`
	}
	decodeInto(t, raw, &envelope)
	if envelope.Error == nil {
		t.Fatalf("no error envelope in %s", raw)
	}
	return envelope.Error.Code
}

func TestHealthz(t *testing.T) {
	ts, _ := newTestServer(t, Options{})
	var h HealthResponse
	resp := getJSON(t, ts.URL+"/healthz", &h)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if h.Status != "ok" || h.Venues != 2 {
		t.Fatalf("healthz = %+v", h)
	}
}

func TestVenuesList(t *testing.T) {
	ts, _ := newTestServer(t, Options{})
	var v VenuesResponse
	getJSON(t, ts.URL+"/v1/venues", &v)
	if len(v.Venues) != 2 {
		t.Fatalf("venues = %+v", v)
	}
	if v.Venues[0].ID != "hospital" || v.Venues[1].ID != "office" {
		t.Fatalf("ids not sorted: %+v", v.Venues)
	}
	h := v.Venues[0]
	if h.Name != "hospital-wing" || h.Doors == 0 || h.Partitions == 0 || h.Checkpoints == 0 {
		t.Fatalf("hospital info = %+v", h)
	}
	if h.Source != "preset:hospital" || h.Epoch != 0 {
		t.Fatalf("hospital info = %+v", h)
	}
}

// TestRouteMatchesEngine proves the serving stack answers exactly as a
// sequential core.Engine for every pooled method across the day.
func TestRouteMatchesEngine(t *testing.T) {
	ts, reg := newTestServer(t, Options{})
	ve, _ := reg.Get("hospital")
	for _, method := range []string{"syn", "asyn", "static"} {
		m, _, errDoc := parseMethod(method, false)
		if errDoc != nil {
			t.Fatal(errDoc)
		}
		e := core.NewEngine(ve.Graph(), core.Options{Method: m})
		for hour := 0; hour < 24; hour += 3 {
			at := temporal.Clock(hour, 0, 0)
			q := core.Query{Source: erCentre.point(), Target: wardCentre.point(), At: at}
			want, _, wantErr := e.Route(q)

			resp, raw := postJSON(t, ts.URL+"/v1/venues/hospital/route", RouteRequest{
				From: &erCentre, To: &wardCentre, At: at.String(), Method: method,
			})
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("%s t=%d: status %d: %s", method, hour, resp.StatusCode, raw)
			}
			var rr RouteResponse
			decodeInto(t, raw, &rr)
			if errors.Is(wantErr, core.ErrNoRoute) {
				if rr.Found {
					t.Fatalf("%s t=%d: found a path where the engine found none", method, hour)
				}
				continue
			}
			if wantErr != nil {
				t.Fatal(wantErr)
			}
			if !rr.Found || rr.Path == nil {
				t.Fatalf("%s t=%d: found=false, engine found %v", method, hour, want)
			}
			assertPathEqual(t, ve, want, rr.Path)
			if rr.Stats == nil || rr.Stats.Method == "" {
				t.Fatalf("%s t=%d: missing stats", method, hour)
			}
		}
	}
}

// assertPathEqual compares a wire path to an engine path field by
// field (float64 survives a JSON round trip exactly).
func assertPathEqual(t testing.TB, ve *Venue, want *core.Path, got *PathDoc) {
	t.Helper()
	mv := ve.Model()
	if got.LengthM != want.Length || got.Hops != want.Hops() {
		t.Fatalf("length/hops = %v/%d, want %v/%d", got.LengthM, got.Hops, want.Length, want.Hops())
	}
	if got.ArriveSec != float64(want.ArrivalAtTgt) || got.DepartSec != float64(want.DepartedAt) {
		t.Fatalf("times = %v→%v, want %v→%v", got.DepartSec, got.ArriveSec, want.DepartedAt, want.ArrivalAtTgt)
	}
	if got.Format != want.Format(mv) {
		t.Fatalf("format = %q, want %q", got.Format, want.Format(mv))
	}
	if len(got.Doors) != len(want.Doors) {
		t.Fatalf("doors = %d, want %d", len(got.Doors), len(want.Doors))
	}
	for i, d := range want.Doors {
		if got.Doors[i].Door != mv.Door(d).Name || got.Doors[i].ArriveSec != float64(want.Arrivals[i]) {
			t.Fatalf("door[%d] = %+v, want %s at %v", i, got.Doors[i], mv.Door(d).Name, want.Arrivals[i])
		}
	}
}

func TestRouteNoRoute(t *testing.T) {
	ts, _ := newTestServer(t, Options{})
	// 13:00 falls in the visiting-hours gap: the ward is unreachable.
	resp, raw := postJSON(t, ts.URL+"/v1/venues/hospital/route", RouteRequest{
		From: &erCentre, To: &wardCentre, At: "13:00",
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d: %s", resp.StatusCode, raw)
	}
	var rr RouteResponse
	decodeInto(t, raw, &rr)
	if rr.Found || rr.Path != nil || rr.Error != nil {
		t.Fatalf("response = %s", raw)
	}
}

func TestRouteWaiting(t *testing.T) {
	ts, _ := newTestServer(t, Options{})
	resp, raw := postJSON(t, ts.URL+"/v1/venues/hospital/route", RouteRequest{
		From: &erCentre, To: &wardCentre, At: "13:00", Method: "waiting",
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d: %s", resp.StatusCode, raw)
	}
	var rr RouteResponse
	decodeInto(t, raw, &rr)
	if !rr.Found || rr.Path == nil {
		t.Fatalf("response = %s", raw)
	}
	if rr.Path.WaitSec <= 0 {
		t.Fatalf("waiting route at 13:00 should wait for visiting hours, got wait %v", rr.Path.WaitSec)
	}
	if rr.Stats != nil {
		t.Fatalf("waiting has no engine stats, got %+v", rr.Stats)
	}
}

func TestRouteCacheHitFlag(t *testing.T) {
	ts, _ := newTestServer(t, Options{})
	req := RouteRequest{From: &erCentre, To: &wardCentre, At: "11:00"}
	_, raw1 := postJSON(t, ts.URL+"/v1/venues/hospital/route", req)
	_, raw2 := postJSON(t, ts.URL+"/v1/venues/hospital/route", req)
	var r1, r2 RouteResponse
	decodeInto(t, raw1, &r1)
	decodeInto(t, raw2, &r2)
	if r1.CacheHit {
		t.Fatal("first request cannot be a cache hit")
	}
	if !r2.CacheHit {
		t.Fatal("identical second request should be a cache hit")
	}
	if r1.Path.LengthM != r2.Path.LengthM || r1.Path.Format != r2.Path.Format {
		t.Fatalf("cache hit changed the answer: %s vs %s", raw1, raw2)
	}
}

func TestRouteValidation(t *testing.T) {
	ts, _ := newTestServer(t, Options{})
	url := ts.URL + "/v1/venues/hospital/route"
	cases := []struct {
		name       string
		body       any
		raw        string // used instead of body when non-empty
		wantStatus int
		wantCode   string
	}{
		{name: "missing from", body: RouteRequest{To: &wardCentre, At: "11:00"}, wantStatus: 400, wantCode: "bad_request"},
		{name: "missing to", body: RouteRequest{From: &erCentre, At: "11:00"}, wantStatus: 400, wantCode: "bad_request"},
		{name: "missing at", body: RouteRequest{From: &erCentre, To: &wardCentre}, wantStatus: 400, wantCode: "bad_request"},
		{name: "bad at", body: RouteRequest{From: &erCentre, To: &wardCentre, At: "25:99"}, wantStatus: 400, wantCode: "bad_request"},
		{name: "bad method", body: RouteRequest{From: &erCentre, To: &wardCentre, At: "11:00", Method: "dijkstra"}, wantStatus: 400, wantCode: "bad_request"},
		{name: "negative speed", body: RouteRequest{From: &erCentre, To: &wardCentre, At: "11:00", Speed: -1}, wantStatus: 400, wantCode: "bad_request"},
		{name: "unknown field", raw: `{"fromm": {"x":1,"y":1,"floor":0}}`, wantStatus: 400, wantCode: "bad_request"},
		{name: "malformed json", raw: `{"from": `, wantStatus: 400, wantCode: "bad_request"},
		{name: "not indoor", body: RouteRequest{From: &PointDoc{X: -500, Y: -500}, To: &wardCentre, At: "11:00"}, wantStatus: 422, wantCode: "not_indoor"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var resp *http.Response
			var raw []byte
			if tc.raw != "" {
				r, err := http.Post(url, "application/json", strings.NewReader(tc.raw))
				if err != nil {
					t.Fatal(err)
				}
				defer r.Body.Close()
				raw, _ = io.ReadAll(r.Body)
				resp = r
			} else {
				resp, raw = postJSON(t, url, tc.body)
			}
			if resp.StatusCode != tc.wantStatus {
				t.Fatalf("status = %d, want %d: %s", resp.StatusCode, tc.wantStatus, raw)
			}
			if code := errCode(t, raw); code != tc.wantCode {
				t.Fatalf("code = %q, want %q", code, tc.wantCode)
			}
		})
	}
}

func TestUnknownVenue(t *testing.T) {
	ts, _ := newTestServer(t, Options{})
	resp, raw := postJSON(t, ts.URL+"/v1/venues/atlantis/route", RouteRequest{
		From: &erCentre, To: &wardCentre, At: "11:00",
	})
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("status = %d: %s", resp.StatusCode, raw)
	}
	if code := errCode(t, raw); code != "not_found" {
		t.Fatalf("code = %q", code)
	}
}

func TestRouteBatch(t *testing.T) {
	ts, reg := newTestServer(t, Options{})
	ve, _ := reg.Get("hospital")
	e := core.NewEngine(ve.Graph(), core.Options{Method: core.MethodAsyn})

	var req BatchRequest
	for hour := 8; hour <= 16; hour += 2 {
		req.Queries = append(req.Queries, RouteRequest{
			From: &erCentre, To: &wardCentre, At: temporal.Clock(hour, 0, 0).String(),
		})
	}
	req.Queries = append(req.Queries, req.Queries[0]) // duplicate: dedup work

	resp, raw := postJSON(t, ts.URL+"/v1/venues/hospital/route:batch", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d: %s", resp.StatusCode, raw)
	}
	var br BatchResponse
	decodeInto(t, raw, &br)
	if len(br.Results) != len(req.Queries) {
		t.Fatalf("results = %d, want %d", len(br.Results), len(req.Queries))
	}
	for i, rr := range br.Results {
		at, _ := temporal.Parse(req.Queries[i].At)
		want, _, wantErr := e.Route(core.Query{Source: erCentre.point(), Target: wardCentre.point(), At: at})
		if errors.Is(wantErr, core.ErrNoRoute) {
			if rr.Found {
				t.Fatalf("results[%d]: found where engine found none", i)
			}
			continue
		}
		if wantErr != nil {
			t.Fatal(wantErr)
		}
		if !rr.Found {
			t.Fatalf("results[%d]: not found, engine found %v", i, want)
		}
		assertPathEqual(t, ve, want, rr.Path)
	}
	last := br.Results[len(br.Results)-1]
	if !last.Shared && !last.CacheHit {
		t.Fatalf("duplicate entry neither shared nor cached: %s", raw)
	}
}

func TestBatchValidation(t *testing.T) {
	ts, _ := newTestServer(t, Options{MaxBatch: 3})
	url := ts.URL + "/v1/venues/hospital/route:batch"
	q := RouteRequest{From: &erCentre, To: &wardCentre, At: "11:00"}

	cases := []struct {
		name       string
		req        BatchRequest
		wantStatus int
		wantIn     string
	}{
		{name: "empty", req: BatchRequest{}, wantStatus: 400, wantIn: "empty"},
		{name: "waiting method", req: BatchRequest{Method: "waiting", Queries: []RouteRequest{q}}, wantStatus: 400, wantIn: "only available for single route requests"},
		{name: "per-query method", req: BatchRequest{Queries: []RouteRequest{{From: &erCentre, To: &wardCentre, At: "11:00", Method: "syn"}}}, wantStatus: 400, wantIn: "per-query methods"},
		{name: "bad entry", req: BatchRequest{Queries: []RouteRequest{q, {From: &erCentre, To: &wardCentre, At: "nope"}}}, wantStatus: 400, wantIn: "queries[1]"},
		{name: "too large", req: BatchRequest{Queries: []RouteRequest{q, q, q, q}}, wantStatus: 413, wantIn: "3-query limit"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp, raw := postJSON(t, url, tc.req)
			if resp.StatusCode != tc.wantStatus {
				t.Fatalf("status = %d, want %d: %s", resp.StatusCode, tc.wantStatus, raw)
			}
			var envelope struct {
				Error *ErrorDoc `json:"error"`
			}
			decodeInto(t, raw, &envelope)
			if !strings.Contains(envelope.Error.Message, tc.wantIn) {
				t.Fatalf("message %q does not mention %q", envelope.Error.Message, tc.wantIn)
			}
		})
	}
}

func TestProfile(t *testing.T) {
	ts, _ := newTestServer(t, Options{})
	var pr ProfileResponse
	resp := getJSON(t, fmt.Sprintf("%s/v1/venues/hospital/profile?from=%g,%g,%d&to=%g,%g,%d",
		ts.URL, erCentre.X, erCentre.Y, erCentre.Floor, wardCentre.X, wardCentre.Y, wardCentre.Floor), &pr)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if len(pr.Entries) == 0 {
		t.Fatal("no profile entries")
	}
	if pr.Entries[0].StartSec != 0 || pr.Entries[len(pr.Entries)-1].EndSec != float64(temporal.DaySeconds) {
		t.Fatalf("profile does not cover the day: %+v", pr.Entries)
	}
	// Visiting hours must toggle ward reachability across the day.
	var reachable, unreachable bool
	for _, e := range pr.Entries {
		if e.Reachable {
			reachable = true
			if e.LengthM <= 0 {
				t.Fatalf("reachable slot with zero length: %+v", e)
			}
		} else {
			unreachable = true
		}
	}
	if !reachable || !unreachable {
		t.Fatalf("profile should mix reachable and unreachable slots: %+v", pr.Entries)
	}

	// Validation.
	if resp := getJSON(t, ts.URL+"/v1/venues/hospital/profile?from=1,2", nil); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad from: status = %d", resp.StatusCode)
	}
	if resp := getJSON(t, ts.URL+"/v1/venues/hospital/profile", nil); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("missing params: status = %d", resp.StatusCode)
	}
}

// TestSchedulesLiveUpdate drives the live-update path end to end:
// route (cache fill), close the ward door, verify the same request now
// reports no route (no stale cache), reopen, verify it routes again.
func TestSchedulesLiveUpdate(t *testing.T) {
	ts, reg := newTestServer(t, Options{})
	url := ts.URL + "/v1/venues/hospital"
	req := RouteRequest{From: &erCentre, To: &wardCentre, At: "11:00"}

	route := func() RouteResponse {
		t.Helper()
		resp, raw := postJSON(t, url+"/route", req)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("route status = %d: %s", resp.StatusCode, raw)
		}
		var rr RouteResponse
		decodeInto(t, raw, &rr)
		return rr
	}

	if rr := route(); !rr.Found {
		t.Fatal("11:00 should route during visiting hours")
	}
	route() // second hit populates/serves cache

	// Close ward-1's door all day (empty ATI list = always closed).
	resp, raw := doJSON(t, http.MethodPut, url+"/schedules", SchedulesRequest{
		Updates: map[string][]string{"ward-1-door": {}},
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("schedules status = %d: %s", resp.StatusCode, raw)
	}
	var sr SchedulesResponse
	decodeInto(t, raw, &sr)
	if sr.DoorsUpdated != 1 || sr.Epoch != 1 {
		t.Fatalf("schedules response = %+v", sr)
	}
	if rr := route(); rr.Found {
		t.Fatal("route found after closing the ward door (stale cache?)")
	}

	// Reopen around the clock (null = always open).
	resp, raw = doJSON(t, http.MethodPut, url+"/schedules", SchedulesRequest{
		Updates: map[string][]string{"ward-1-door": nil},
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("schedules status = %d: %s", resp.StatusCode, raw)
	}
	decodeInto(t, raw, &sr)
	if sr.Epoch != 2 {
		t.Fatalf("epoch = %d, want 2", sr.Epoch)
	}
	if rr := route(); !rr.Found {
		t.Fatal("route not found after reopening the ward door")
	}

	// The venue listing reflects the update generation.
	ve, _ := reg.Get("hospital")
	if ve.Epoch() != 2 {
		t.Fatalf("venue epoch = %d, want 2", ve.Epoch())
	}
}

func TestSchedulesValidation(t *testing.T) {
	ts, _ := newTestServer(t, Options{})
	url := ts.URL + "/v1/venues/hospital/schedules"
	cases := []struct {
		name   string
		req    SchedulesRequest
		wantIn string
	}{
		{name: "empty", req: SchedulesRequest{}, wantIn: "empty"},
		{name: "unknown door", req: SchedulesRequest{Updates: map[string][]string{"no-such-door": nil}}, wantIn: "unknown door"},
		{name: "bad ati", req: SchedulesRequest{Updates: map[string][]string{"ward-1-door": {"25:00-26:00"}}}, wantIn: "bad ATI"},
		{name: "inverted ati", req: SchedulesRequest{Updates: map[string][]string{"ward-1-door": {"16:00-08:00"}}}, wantIn: "ward-1-door"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp, raw := doJSON(t, http.MethodPut, url, tc.req)
			if resp.StatusCode != http.StatusBadRequest {
				t.Fatalf("status = %d: %s", resp.StatusCode, raw)
			}
			var envelope struct {
				Error *ErrorDoc `json:"error"`
			}
			decodeInto(t, raw, &envelope)
			if !strings.Contains(envelope.Error.Message, tc.wantIn) {
				t.Fatalf("message %q does not mention %q", envelope.Error.Message, tc.wantIn)
			}
		})
	}
}

func TestStatsz(t *testing.T) {
	ts, _ := newTestServer(t, Options{})
	req := RouteRequest{From: &erCentre, To: &wardCentre, At: "11:00"}
	postJSON(t, ts.URL+"/v1/venues/hospital/route", req)
	postJSON(t, ts.URL+"/v1/venues/hospital/route", req) // cache hit

	var sr StatsResponse
	getJSON(t, ts.URL+"/statsz", &sr)
	h, ok := sr.Venues["hospital"]
	if !ok {
		t.Fatalf("statsz missing hospital: %+v", sr)
	}
	asyn := h.Methods["asyn"]
	if asyn.Queries != 2 || asyn.CacheHits != 1 || asyn.CacheMisses() != 1 {
		t.Fatalf("asyn stats = %+v", asyn)
	}
	if syn := h.Methods["syn"]; syn.Queries != 0 {
		t.Fatalf("syn pool should be untouched: %+v", syn)
	}
	if _, ok := sr.Venues["office"]; !ok {
		t.Fatal("statsz missing office")
	}
}

func TestRequestTimeout(t *testing.T) {
	ts, _ := newTestServer(t, Options{RequestTimeout: time.Nanosecond})
	resp, raw := postJSON(t, ts.URL+"/v1/venues/hospital/route", RouteRequest{
		From: &erCentre, To: &wardCentre, At: "11:00",
	})
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("status = %d: %s", resp.StatusCode, raw)
	}
	if code := errCode(t, raw); code != "timeout" {
		t.Fatalf("code = %q", code)
	}
}

func TestRunWithTimeout(t *testing.T) {
	block := make(chan struct{})
	_, outcome := runWithTimeout(t.Context(), 10*time.Millisecond, func() int {
		<-block
		return 1
	})
	if outcome != runTimeout {
		t.Fatalf("blocking fn: outcome = %v, want runTimeout", outcome)
	}
	close(block)

	v, outcome := runWithTimeout(t.Context(), -1, func() int { return 7 })
	if outcome != runDone || v != 7 {
		t.Fatalf("disabled timeout: %v %v", v, outcome)
	}

	v, outcome = runWithTimeout(t.Context(), time.Second, func() int { return 9 })
	if outcome != runDone || v != 9 {
		t.Fatalf("fast fn: %v %v", v, outcome)
	}
}

// TestRunWithTimeoutClientGone: a cancelled request context must read
// as the client hanging up, not as a server-side timeout — the two
// were previously conflated into one 504.
func TestRunWithTimeoutClientGone(t *testing.T) {
	// Already-gone client: aborts before fn even starts.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	ran := false
	_, outcome := runWithTimeout(ctx, time.Second, func() int { ran = true; return 1 })
	if outcome != runClientGone {
		t.Fatalf("pre-cancelled ctx: outcome = %v, want runClientGone", outcome)
	}
	if ran {
		t.Fatal("fn should not run for a client that is already gone")
	}

	// Mid-flight disconnect: cancellation during fn.
	ctx, cancel = context.WithCancel(context.Background())
	block := make(chan struct{})
	defer close(block)
	go func() { cancel() }()
	_, outcome = runWithTimeout(ctx, time.Minute, func() int {
		<-block
		return 1
	})
	if outcome != runClientGone {
		t.Fatalf("mid-flight cancel: outcome = %v, want runClientGone", outcome)
	}

	// Disconnects are classified even with the timeout disabled
	// (itspqd -timeout -1s): before fn starts and while it runs.
	ctx, cancel = context.WithCancel(context.Background())
	cancel()
	ran = false
	_, outcome = runWithTimeout(ctx, -1, func() int { ran = true; return 1 })
	if outcome != runClientGone || ran {
		t.Fatalf("disabled timeout, pre-cancelled: outcome = %v, ran = %v", outcome, ran)
	}
	ctx, cancel = context.WithCancel(context.Background())
	_, outcome = runWithTimeout(ctx, -1, func() int { cancel(); return 1 })
	if outcome != runClientGone {
		t.Fatalf("disabled timeout, cancel during fn: outcome = %v, want runClientGone", outcome)
	}
}

// TestRouteClientGone drives the handler with a dead client: no 504
// body may be written and the disconnect must land in the client_gone
// counter, not the timeout one.
func TestRouteClientGone(t *testing.T) {
	reg := NewRegistry(service.Options{})
	if _, err := reg.AddPresets("hospital"); err != nil {
		t.Fatal(err)
	}
	var logged bytes.Buffer
	srv := New(reg, Options{Logf: func(format string, args ...any) {
		fmt.Fprintf(&logged, format+"\n", args...)
	}})

	body, _ := json.Marshal(RouteRequest{From: &erCentre, To: &wardCentre, At: "11:00"})
	req := httptest.NewRequest(http.MethodPost, "/v1/venues/hospital/route", bytes.NewReader(body))
	ctx, cancel := context.WithCancel(req.Context())
	cancel() // the client is gone before the handler starts
	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, req.WithContext(ctx))

	if rec.Code == http.StatusGatewayTimeout {
		t.Fatalf("client disconnect answered 504: %s", rec.Body.String())
	}
	if rec.Body.Len() != 0 {
		t.Fatalf("wrote a body into a dead connection: %s", rec.Body.String())
	}
	if got := srv.clientGone.Load(); got != 1 {
		t.Fatalf("clientGone = %d, want 1", got)
	}
	if got := srv.timeouts.Load(); got != 0 {
		t.Fatalf("timeouts = %d, want 0 (disconnects must not inflate timeouts)", got)
	}
	if !strings.Contains(logged.String(), "client disconnected") {
		t.Fatalf("disconnect not logged: %q", logged.String())
	}

	// A real deadline still answers 504 and lands in the other counter.
	srvTO := New(reg, Options{RequestTimeout: time.Nanosecond})
	rec = httptest.NewRecorder()
	srvTO.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/v1/venues/hospital/route", bytes.NewReader(body)))
	if rec.Code != http.StatusGatewayTimeout {
		t.Fatalf("deadline status = %d, want 504", rec.Code)
	}
	if srvTO.timeouts.Load() != 1 || srvTO.clientGone.Load() != 0 {
		t.Fatalf("deadline counters = timeouts %d clientGone %d, want 1/0",
			srvTO.timeouts.Load(), srvTO.clientGone.Load())
	}
}

func TestRegistryValidation(t *testing.T) {
	reg := NewRegistry(service.Options{})
	v := synth.Hospital()
	if err := reg.Add("a/b", v); err == nil {
		t.Fatal("slash in id should be rejected")
	}
	if err := reg.Add("", v); err == nil {
		t.Fatal("empty id should be rejected")
	}
	if err := reg.Add("h", v); err != nil {
		t.Fatal(err)
	}
	if err := reg.Add("h", v); err == nil {
		t.Fatal("duplicate id should be rejected")
	}
	if _, err := reg.AddPresets("nonsense"); err == nil {
		t.Fatal("unknown preset should be rejected")
	}
	if _, err := reg.LoadDir(t.TempDir()); err == nil {
		t.Fatal("empty venue dir should be rejected")
	}
	if got := reg.IDs(); len(got) != 1 || got[0] != "h" {
		t.Fatalf("IDs = %v", got)
	}
}

func TestLoadDir(t *testing.T) {
	dir := t.TempDir()
	saveVenue := func(name string, v *model.Venue) {
		t.Helper()
		var buf bytes.Buffer
		if err := itgraph.Save(&buf, v); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dir, name), buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	saveVenue("wing.json", synth.Hospital())
	saveVenue("floor.json", synth.Office())

	reg := NewRegistry(service.Options{})
	ids, err := reg.LoadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 2 || ids[0] != "floor" || ids[1] != "wing" {
		t.Fatalf("loaded %v, want [floor wing]", ids)
	}
	ve, ok := reg.Get("wing")
	if !ok {
		t.Fatalf("IDs = %v", reg.IDs())
	}
	if !strings.HasPrefix(ve.Source(), "file:") {
		t.Fatalf("source = %q", ve.Source())
	}
	// A loaded venue routes.
	p, _, err := ve.Pool(core.MethodAsyn).Route(core.Query{
		Source: erCentre.point(), Target: wardCentre.point(), At: temporal.Clock(11, 0, 0),
	})
	if err != nil || p == nil {
		t.Fatalf("route over loaded venue: %v", err)
	}
}

// newWindowTestServer boots the hospital/office registry with the
// validity-window cache enabled on every pool.
func newWindowTestServer(t testing.TB, opts Options) (*httptest.Server, *Registry) {
	t.Helper()
	reg := NewRegistry(service.Options{WindowCache: true})
	if _, err := reg.AddPresets("hospital,office"); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(New(reg, opts))
	t.Cleanup(ts.Close)
	return ts, reg
}

// TestRouteHitProvenance walks one query family through all three
// provenance values on a window-enabled server: engine search, then a
// cross-time window hit (byte-identical to a fresh engine run at the
// shifted departure), then an exact hit on the identical repeat.
func TestRouteHitProvenance(t *testing.T) {
	ts, reg := newWindowTestServer(t, Options{})
	url := ts.URL + "/v1/venues/hospital/route"

	_, raw1 := postJSON(t, url, RouteRequest{From: &erCentre, To: &wardCentre, At: "11:00"})
	var r1 RouteResponse
	decodeInto(t, raw1, &r1)
	if r1.Hit != "miss" || r1.CacheHit {
		t.Fatalf("first request: hit=%q cache_hit=%v, want miss: %s", r1.Hit, r1.CacheHit, raw1)
	}

	// 11:20 sits in the same visiting-hours slot: a window hit.
	_, raw2 := postJSON(t, url, RouteRequest{From: &erCentre, To: &wardCentre, At: "11:20"})
	var r2 RouteResponse
	decodeInto(t, raw2, &r2)
	if r2.Hit != "window" || !r2.CacheHit {
		t.Fatalf("shifted request: hit=%q cache_hit=%v, want window: %s", r2.Hit, r2.CacheHit, raw2)
	}
	ve, _ := reg.Get("hospital")
	want, _, err := core.NewEngine(ve.Graph(), core.Options{Method: core.MethodAsyn}).Route(core.Query{
		Source: erCentre.point(), Target: wardCentre.point(), At: temporal.Clock(11, 20, 0),
	})
	if err != nil {
		t.Fatal(err)
	}
	assertPathEqual(t, ve, want, r2.Path)
	if r2.Path.ArriveSec != float64(want.ArrivalAtTgt) || r2.Path.DepartSec != float64(want.DepartedAt) {
		t.Fatalf("window answer times %v/%v differ from engine %v/%v",
			r2.Path.DepartSec, r2.Path.ArriveSec, want.DepartedAt, want.ArrivalAtTgt)
	}

	// The engine-computed original repeats as an exact hit; the shifted
	// departure keeps serving from the window store (no promotion).
	_, raw3 := postJSON(t, url, RouteRequest{From: &erCentre, To: &wardCentre, At: "11:00"})
	var r3 RouteResponse
	decodeInto(t, raw3, &r3)
	if r3.Hit != "exact" || !r3.CacheHit {
		t.Fatalf("repeat request: hit=%q, want exact: %s", r3.Hit, raw3)
	}
	_, raw4 := postJSON(t, url, RouteRequest{From: &erCentre, To: &wardCentre, At: "11:20"})
	var r4 RouteResponse
	decodeInto(t, raw4, &r4)
	if r4.Hit != "window" {
		t.Fatalf("repeated shifted request: hit=%q, want window: %s", r4.Hit, raw4)
	}

	// /statsz reflects the provenance split.
	var sr StatsResponse
	getJSON(t, ts.URL+"/statsz", &sr)
	asyn := sr.Venues["hospital"].Methods["asyn"]
	if asyn.Queries != 4 || asyn.CacheHits != 1 || asyn.WindowHits != 2 || asyn.CacheMisses() != 1 {
		t.Fatalf("asyn stats = %+v", asyn)
	}
}

// TestBatchCacheSummary: a departure sweep through the batch endpoint
// reports the cache summary the CLI prints, and the counts partition
// the batch.
func TestBatchCacheSummary(t *testing.T) {
	ts, _ := newWindowTestServer(t, Options{})
	var req BatchRequest
	for min := 0; min < 110; min += 10 { // 10:00..11:50, inside one slot
		req.Queries = append(req.Queries, RouteRequest{
			From: &erCentre, To: &wardCentre, At: temporal.Clock(10, min, 0).String(),
		})
	}
	req.Queries = append(req.Queries, req.Queries[0]) // duplicate → deduped
	resp, raw := postJSON(t, ts.URL+"/v1/venues/hospital/route:batch", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d: %s", resp.StatusCode, raw)
	}
	var br BatchResponse
	decodeInto(t, raw, &br)
	c := br.Cache
	if c.Queries != len(req.Queries) {
		t.Fatalf("cache.queries = %d, want %d", c.Queries, len(req.Queries))
	}
	deduped := c.Queries - c.ExactHits - c.WindowHits - c.Searches
	if deduped < 1 {
		t.Fatalf("summary does not account for the duplicate: %+v", c)
	}
	if c.WindowHits == 0 {
		t.Fatalf("one-slot sweep produced no window hits: %+v", c)
	}
	if c.Searches >= len(req.Queries)-1 {
		t.Fatalf("sweep did not reuse searches: %+v", c)
	}
	// Per-result provenance agrees with the summary.
	var exact, window, searches int
	for _, rr := range br.Results {
		if rr.Shared {
			continue
		}
		switch rr.Hit {
		case "exact":
			exact++
		case "window":
			window++
		default:
			searches++
		}
	}
	if exact != c.ExactHits || window != c.WindowHits || searches != c.Searches {
		t.Fatalf("summary %+v does not match per-result provenance %d/%d/%d", c, exact, window, searches)
	}
}

// TestMetricsz checks the Prometheus text endpoint: content type, HELP/
// TYPE headers, per-(venue, method) series, and counter movement.
func TestMetricsz(t *testing.T) {
	ts, _ := newWindowTestServer(t, Options{})
	postJSON(t, ts.URL+"/v1/venues/hospital/route", RouteRequest{From: &erCentre, To: &wardCentre, At: "11:00"})
	postJSON(t, ts.URL+"/v1/venues/hospital/route", RouteRequest{From: &erCentre, To: &wardCentre, At: "11:30"})

	resp, raw := doJSON(t, http.MethodGet, ts.URL+"/metricsz", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Fatalf("content type = %q", ct)
	}
	body := string(raw)
	for _, want := range []string{
		"# TYPE indoorpath_pool_queries_total counter",
		"# TYPE indoorpath_pool_window_hits_total counter",
		"# TYPE indoorpath_pool_epoch gauge",
		"# HELP indoorpath_pool_engine_searches_total",
		"indoorpath_venues 2",
		`indoorpath_venue_epoch{venue="hospital"} 0`,
		`indoorpath_pool_queries_total{venue="hospital",method="asyn"} 2`,
		`indoorpath_pool_window_hits_total{venue="hospital",method="asyn"} 1`,
		`indoorpath_pool_engine_searches_total{venue="hospital",method="asyn"} 1`,
		"# TYPE indoorpath_pool_shared_runs_total counter",
		`indoorpath_pool_shared_runs_total{venue="hospital",method="asyn"} 0`,
		`indoorpath_pool_shared_answers_total{venue="hospital",method="asyn"} 0`,
		`indoorpath_pool_queries_total{venue="office",method="syn"} 0`,
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("metricsz missing %q:\n%s", want, body)
		}
	}
	// Two scrapes are deterministic byte-for-byte when idle.
	_, raw2 := doJSON(t, http.MethodGet, ts.URL+"/metricsz", nil)
	if string(raw2) != body {
		t.Fatal("idle metricsz scrapes differ")
	}
}

// newCoalesceTestServer boots the hospital preset behind a coalescing
// server whose flushes are deterministic: MaxGroup 2 and an
// effectively-infinite hold, so a flush happens exactly when the
// second concurrent request arrives.
func newCoalesceTestServer(t testing.TB) *httptest.Server {
	t.Helper()
	reg := NewRegistry(service.Options{SharedBatch: true})
	if _, err := reg.AddPresets("hospital"); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(New(reg, Options{
		Coalesce:         true,
		CoalesceHold:     10 * time.Second,
		CoalesceMaxGroup: 2,
	}))
	t.Cleanup(ts.Close)
	return ts
}

// TestCoalesceHoldClampedUnderTimeout: a hold window at or beyond the
// request deadline would make every singleton solo route 504 by
// construction; New clamps it, so a lone request is answered within
// the deadline instead.
func TestCoalesceHoldClampedUnderTimeout(t *testing.T) {
	reg := NewRegistry(service.Options{SharedBatch: true})
	if _, err := reg.AddPresets("hospital"); err != nil {
		t.Fatal(err)
	}
	var logged bytes.Buffer
	srv := New(reg, Options{
		Coalesce:       true,
		CoalesceHold:   time.Minute, // would exceed the deadline below
		RequestTimeout: 500 * time.Millisecond,
		Logf:           func(format string, args ...any) { fmt.Fprintf(&logged, format+"\n", args...) },
	})
	if !strings.Contains(logged.String(), "clamped") {
		t.Fatalf("clamp not logged: %q", logged.String())
	}
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	resp, raw := postJSON(t, ts.URL+"/v1/venues/hospital/route",
		RouteRequest{From: &erCentre, To: &wardCentre, At: "11:00"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("singleton under clamped hold: status %d: %s", resp.StatusCode, raw)
	}
	if srv.timeouts.Load() != 0 {
		t.Fatalf("timeouts = %d, want 0", srv.timeouts.Load())
	}
}

// TestRouteCoalesced: two concurrent solo route requests are answered
// out of one coalesced flush — both marked coalesced on the wire, one
// coalesced group in /statsz and /metricsz, and the pool seeing
// exactly two queries (the deduped member is not double-counted).
func TestRouteCoalesced(t *testing.T) {
	ts := newCoalesceTestServer(t)
	url := ts.URL + "/v1/venues/hospital/route"
	req := RouteRequest{From: &erCentre, To: &wardCentre, At: "11:00"}

	var rs [2]RouteResponse
	var wg sync.WaitGroup
	for i := range rs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, raw := postJSON(t, url, req)
			if resp.StatusCode != http.StatusOK {
				t.Errorf("request %d: status %d: %s", i, resp.StatusCode, raw)
				return
			}
			if err := json.Unmarshal(raw, &rs[i]); err != nil {
				t.Errorf("request %d: %v", i, err)
			}
		}(i)
	}
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}

	shared := 0
	for i, r := range rs {
		if !r.Found || r.Path == nil {
			t.Fatalf("request %d: not found: %+v", i, r)
		}
		if !r.Coalesced {
			t.Fatalf("request %d: not marked coalesced", i)
		}
		if r.Shared {
			shared++
		}
	}
	if shared != 1 {
		t.Fatalf("want exactly one deduped member in the identical pair, got %d", shared)
	}
	if rs[0].Path.LengthM != rs[1].Path.LengthM || rs[0].Path.Format != rs[1].Path.Format {
		t.Fatalf("coalesced answers differ: %+v vs %+v", rs[0].Path, rs[1].Path)
	}

	var sr StatsResponse
	getJSON(t, ts.URL+"/statsz", &sr)
	st := sr.Venues["hospital"].Methods["asyn"]
	if st.Queries != 2 || st.Deduped != 1 {
		t.Fatalf("pool stats = %+v, want 2 queries with 1 deduped", st)
	}
	cs, ok := sr.Venues["hospital"].Coalesce["asyn"]
	if !ok {
		t.Fatalf("statsz missing coalesce stats: %+v", sr.Venues["hospital"])
	}
	if cs.Queries != 2 || cs.Flushes != 1 || cs.Groups != 1 || cs.Answers != 2 {
		t.Fatalf("coalesce stats = %+v, want one 2-query flush", cs)
	}
	if cs.HoldSumNanos < 0 || cs.MaxHoldNanos > int64(10*time.Second) {
		t.Fatalf("hold accounting out of range: %+v", cs)
	}
	if sr.Server.Timeouts != 0 || sr.Server.ClientGone != 0 {
		t.Fatalf("server stats = %+v, want zero aborts", sr.Server)
	}

	_, raw := doJSON(t, http.MethodGet, ts.URL+"/metricsz", nil)
	body := string(raw)
	for _, want := range []string{
		"# TYPE indoorpath_coalesce_groups_total counter",
		`indoorpath_coalesce_groups_total{venue="hospital",method="asyn"} 1`,
		`indoorpath_coalesce_answers_total{venue="hospital",method="asyn"} 2`,
		`indoorpath_coalesce_flushes_total{venue="hospital",method="asyn"} 1`,
		"# TYPE indoorpath_coalesce_hold_seconds histogram",
		`indoorpath_coalesce_hold_seconds_bucket{venue="hospital",method="asyn",le="+Inf"} 2`,
		`indoorpath_coalesce_hold_seconds_count{venue="hospital",method="asyn"} 2`,
		"# TYPE indoorpath_server_timeouts_total counter",
		"indoorpath_server_timeouts_total 0",
		"indoorpath_server_client_gone_total 0",
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("metricsz missing %q:\n%s", want, body)
		}
	}
}

// TestRouteCoalescedDistinctTargets: a coalesced flush of two
// distinct same-source queries is answered by ONE shared engine run
// (shared_run provenance on the wire, EngineSearches < queries).
func TestRouteCoalescedDistinctTargets(t *testing.T) {
	ts := newCoalesceTestServer(t)
	url := ts.URL + "/v1/venues/hospital/route"
	// Same source and departure, different in-venue targets: the
	// batchplan shared-source group answers both with one RouteMany.
	reqs := [2]RouteRequest{
		{From: &erCentre, To: &wardCentre, At: "11:00"},
		{From: &erCentre, To: &PointDoc{X: 20, Y: 14, Floor: 0}, At: "11:00"},
	}
	var rs [2]RouteResponse
	var wg sync.WaitGroup
	for i := range rs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, raw := postJSON(t, url, reqs[i])
			if resp.StatusCode != http.StatusOK {
				t.Errorf("request %d: status %d: %s", i, resp.StatusCode, raw)
				return
			}
			if err := json.Unmarshal(raw, &rs[i]); err != nil {
				t.Errorf("request %d: %v", i, err)
			}
		}(i)
	}
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}
	for i, r := range rs {
		if !r.Coalesced || !r.SharedRun {
			t.Fatalf("request %d: want coalesced+shared_run provenance, got %+v", i, r)
		}
	}
	var sr StatsResponse
	getJSON(t, ts.URL+"/statsz", &sr)
	st := sr.Venues["hospital"].Methods["asyn"]
	if st.Queries != 2 || st.EngineSearches != 1 || st.SharedRuns != 1 || st.SharedAnswers != 2 {
		t.Fatalf("pool stats = %+v, want one shared run answering both", st)
	}
}
