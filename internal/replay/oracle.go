package replay

import (
	"errors"
	"fmt"
	"math"

	"indoorpath/internal/core"
	"indoorpath/internal/itgraph"
	"indoorpath/internal/model"
	"indoorpath/internal/temporal"
)

// answerTolerance bounds the accepted float difference when comparing
// a served answer against an oracle answer. Engine arithmetic is
// deterministic and JSON round-trips float64 exactly, so matches are
// normally exact; the epsilon only guards the comparison itself.
const answerTolerance = 1e-6

// oracleAnswer is the sequential-engine ground truth for one template
// query under one schedule state.
type oracleAnswer struct {
	found  bool
	failed string // non-empty when the engine itself errored
	doors  []string
	length float64
	arrive float64 // seconds since midnight
}

// phaseOracle holds the per-state, per-template ground truth of a flip
// phase. State 0 is the schedules the phase starts under; state k is
// the venue after flips[0..k-1] have been applied cumulatively (a later
// flip overrides an earlier one per door, exactly as sequential PUT
// /schedules requests compose).
type phaseOracle struct {
	answers [][]oracleAnswer // answers[state][template]
}

// buildOracle computes the ground truth for every (state, template)
// pair with fresh sequential engines over locally rebuilt graphs.
func buildOracle(base *model.Venue, ph *Phase, templates []Query) (*phaseOracle, error) {
	merged := make(map[model.DoorID]temporal.Schedule)
	states := make([]*itgraph.Graph, 0, len(ph.Flips)+1)
	g0, err := itgraph.New(base)
	if err != nil {
		return nil, fmt.Errorf("replay: oracle graph: %w", err)
	}
	states = append(states, g0)
	for fi, f := range ph.Flips {
		for door, atis := range f.Updates {
			id, ok := base.DoorByName(door)
			if !ok {
				return nil, fmt.Errorf("replay: phase %q flip %d: unknown door %q", ph.Name, fi, door)
			}
			sched, err := parseATIs(atis)
			if err != nil {
				return nil, fmt.Errorf("replay: phase %q flip %d door %q: %w", ph.Name, fi, door, err)
			}
			merged[id] = sched
		}
		v2, err := base.WithSchedules(cloneSchedules(merged))
		if err != nil {
			return nil, fmt.Errorf("replay: phase %q flip %d: %w", ph.Name, fi, err)
		}
		g, err := itgraph.New(v2)
		if err != nil {
			return nil, fmt.Errorf("replay: phase %q flip %d: %w", ph.Name, fi, err)
		}
		states = append(states, g)
	}

	po := &phaseOracle{answers: make([][]oracleAnswer, len(states))}
	for si, g := range states {
		po.answers[si] = make([]oracleAnswer, len(templates))
		engines := map[string]*core.Engine{}
		for ti, t := range templates {
			e, ok := engines[t.Method]
			if !ok {
				m, err := methodOf(t.Method)
				if err != nil {
					return nil, err
				}
				e = core.NewEngine(g, core.Options{Method: m})
				engines[t.Method] = e
			}
			q := core.Query{Source: t.From, Target: t.To, At: t.At, Speed: t.Speed}
			path, _, err := e.Route(q)
			switch {
			case errors.Is(err, core.ErrNoRoute):
				po.answers[si][ti] = oracleAnswer{found: false}
			case err != nil:
				po.answers[si][ti] = oracleAnswer{failed: err.Error()}
			default:
				ans := oracleAnswer{
					found:  true,
					doors:  make([]string, len(path.Doors)),
					length: path.Length,
					arrive: float64(path.ArrivalAtTgt),
				}
				v := g.Venue()
				for i, d := range path.Doors {
					ans.doors[i] = v.Door(d).Name
				}
				po.answers[si][ti] = ans
			}
		}
	}
	return po, nil
}

// cloneSchedules copies the merged update map (WithSchedules takes
// ownership semantics per call; never hand it the live accumulator).
func cloneSchedules(m map[model.DoorID]temporal.Schedule) map[model.DoorID]temporal.Schedule {
	out := make(map[model.DoorID]temporal.Schedule, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}

// parseATIs converts an ATI string list to a schedule with the wire's
// conventions: nil = always open, empty = always closed.
func parseATIs(atis []string) (temporal.Schedule, error) {
	if atis == nil {
		return nil, nil
	}
	ivs := make([]temporal.Interval, 0, len(atis))
	for _, s := range atis {
		iv, err := temporal.ParseInterval(s)
		if err != nil {
			return nil, err
		}
		ivs = append(ivs, iv)
	}
	return temporal.NewSchedule(ivs...)
}

// methodOf resolves a stream method name to the engine method.
func methodOf(s string) (core.Method, error) {
	switch s {
	case "syn":
		return core.MethodSyn, nil
	case "asyn":
		return core.MethodAsyn, nil
	case "static":
		return core.MethodStatic, nil
	}
	return 0, fmt.Errorf("replay: unknown method %q", s)
}

// servedAnswer is what the daemon actually returned for one query, in
// oracle-comparable form.
type servedAnswer struct {
	found  bool
	doors  []string
	length float64
	arrive float64
}

// matchResult classifies one served answer against the legal states.
type matchResult int

const (
	// matchStrict: byte-identical to some legal state's oracle answer
	// (doors, length and arrival all agree).
	matchStrict matchResult = iota
	// matchRelaxed: length and arrival agree with some legal state but
	// the door sequence differs — the shape an exact float-length tie
	// between equally shortest paths takes (legal under the PR 4
	// uniqueness condition), NOT a mixed-schedule answer.
	matchRelaxed
	// matchMixed: no legal state produces this answer — the response
	// mixes schedule states, which the serving invariants forbid.
	matchMixed
)

// match classifies a served answer against oracle states lo..hi
// (inclusive): the states the daemon could legally have answered from,
// bracketed by the flips acknowledged before the query was sent and
// the flips initiated before its response arrived.
func (po *phaseOracle) match(template, lo, hi int, got servedAnswer) matchResult {
	if lo < 0 {
		lo = 0
	}
	if hi > len(po.answers)-1 {
		hi = len(po.answers) - 1
	}
	for s := lo; s <= hi; s++ {
		if answerEqual(po.answers[s][template], got, true) {
			return matchStrict
		}
	}
	for s := lo; s <= hi; s++ {
		if answerEqual(po.answers[s][template], got, false) {
			return matchRelaxed
		}
	}
	return matchMixed
}

// answerEqual compares one oracle answer with a served answer; when
// strict, the door sequences must agree too.
func answerEqual(want oracleAnswer, got servedAnswer, strict bool) bool {
	if want.failed != "" {
		return false
	}
	if want.found != got.found {
		return false
	}
	if !want.found {
		return true
	}
	if math.Abs(want.length-got.length) > answerTolerance {
		return false
	}
	if math.Abs(want.arrive-got.arrive) > answerTolerance {
		return false
	}
	if !strict {
		return true
	}
	if len(want.doors) != len(got.doors) {
		return false
	}
	for i := range want.doors {
		if want.doors[i] != got.doors[i] {
			return false
		}
	}
	return true
}
