package replay

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"time"

	"indoorpath/internal/obs"
	"indoorpath/internal/server"
	"indoorpath/internal/service"
)

// LatencyDoc holds the per-phase latency percentiles in milliseconds
// (nearest-rank over every answered request, errors included — a 400
// burns client time too).
type LatencyDoc struct {
	P50 float64 `json:"p50_ms"`
	P95 float64 `json:"p95_ms"`
	P99 float64 `json:"p99_ms"`
	Max float64 `json:"max_ms"`
}

// ProvenanceDoc counts how the phase's answers were produced, from the
// per-response wire flags (hit / coalesced / shared_run / shared).
type ProvenanceDoc struct {
	// Miss / Exact / Window / Skeleton are the "hit" provenance of
	// each answer (Skeleton counts answers composed point-free from a
	// stored door-to-door skeleton family).
	Miss     int `json:"miss"`
	Exact    int `json:"exact"`
	Window   int `json:"window"`
	Skeleton int `json:"skeleton"`
	// Coalesced counts answers served out of a multi-query coalescer
	// flush; SharedRun counts answers produced by a multi-query shared
	// engine execution; Deduped counts answers shared from an
	// identical query in the same flush. The three overlap with the
	// hit counts (a coalesced answer is also a miss, exact or window).
	Coalesced int `json:"coalesced"`
	SharedRun int `json:"shared_run"`
	Deduped   int `json:"deduped"`
}

// StatsDeltaDoc is the /statsz movement across one phase, summed over
// the venue's method pools: the server-side view that latency numbers
// are judged against. SearchesPerQuery is EngineSearches / Queries.
type StatsDeltaDoc struct {
	Queries        int64 `json:"queries"`
	EngineSearches int64 `json:"engine_searches"`
	ExactHits      int64 `json:"cache_hits"`
	WindowHits     int64 `json:"window_hits"`
	SkeletonHits   int64 `json:"skeleton_hits"`
	Deduped        int64 `json:"deduped"`
	SharedRuns     int64 `json:"shared_runs"`
	SharedAnswers  int64 `json:"shared_answers"`
	Epoch          int64 `json:"epoch"`
	// CoalesceFlushes / CoalescedAnswers move only when the daemon
	// runs with -coalesce.
	CoalesceFlushes  int64 `json:"coalesce_flushes"`
	CoalescedAnswers int64 `json:"coalesced_answers"`
	// Timeouts / ClientGone are the server-wide request-lifecycle
	// counters (not per venue, but a replay run owns the daemon).
	Timeouts   int64 `json:"timeouts"`
	ClientGone int64 `json:"client_gone"`
	// Reasons is the decision-provenance movement: why this phase's
	// misses missed and why its plan members ran solo, summed over the
	// venue's method pools (zero against daemons predating them).
	Reasons service.ReasonStats `json:"reasons"`
}

// StageDeltaDoc is one pipeline stage's histogram movement across a
// phase, from the daemon's /statsz stage histograms: where the
// phase's milliseconds actually went, server-side.
type StageDeltaDoc struct {
	Stage   string  `json:"stage"`
	Count   int64   `json:"count"`
	TotalMs float64 `json:"total_ms"`
	MeanMs  float64 `json:"mean_ms"`
	// P95Ms is the histogram-resolution p95: the upper bound of the
	// bucket holding the nearest-rank observation (the lower bound of
	// the overflow bucket when it lands there).
	P95Ms float64 `json:"p95_ms"`
}

// HistQuantilesDoc holds the phase's request-latency quantiles derived
// from the server-side histogram delta (bucket upper bounds), the
// second, clock-independent view next to the client-side LatencyDoc.
type HistQuantilesDoc struct {
	Count int64   `json:"count"`
	P50Ms float64 `json:"p50_ms"`
	P95Ms float64 `json:"p95_ms"`
	P99Ms float64 `json:"p99_ms"`
}

// HotPairDeltaDoc is one OD partition pair's traffic movement across a
// phase, from the daemon's /cachez top-K tables (before/after deltas
// summed over the venue's method pools). Tallies inherit the
// space-saving table's error bounds, so Share is an estimate — good
// for spotting skew, not for billing.
type HotPairDeltaDoc struct {
	Src     string `json:"src"`
	Tgt     string `json:"tgt"`
	Queries int64  `json:"queries"`
	// Share is Queries over the phase's server-side query delta.
	Share float64 `json:"share"`
}

// EngineEffortDeltaDoc is the phase's per-search engine-effort
// movement from the daemon's /statsz effort histograms, summed over
// the venue's method pools. Means are exact; p95s are
// histogram-resolution bucket bounds.
type EngineEffortDeltaDoc struct {
	// Searches is the number of engine runs the phase's histogram
	// delta covers.
	Searches     int64   `json:"searches"`
	MeanPops     float64 `json:"mean_pops"`
	P95Pops      float64 `json:"p95_pops"`
	MeanTVChecks float64 `json:"mean_tv_checks"`
	P95TVChecks  float64 `json:"p95_tv_checks"`
}

// PhaseReport is one phase's measured outcome.
type PhaseReport struct {
	Name    string `json:"name"`
	Queries int    `json:"queries"`
	// Found / NoRoute partition the 200 answers.
	Found   int `json:"found"`
	NoRoute int `json:"no_route"`
	// Errors counts non-2xx answers other than 504; Timeouts counts
	// 504s. ErrorSamples carries the first few error bodies verbatim.
	Errors       int      `json:"errors"`
	Timeouts     int      `json:"timeouts"`
	ErrorSamples []string `json:"error_samples,omitempty"`
	// Flips is the number of schedule updates this phase fired;
	// MixedAnswers counts answers matching no legal schedule state
	// (must be zero — the flip-storm verdict); TieRelaxed counts
	// answers that matched a state on length+arrival but not doors
	// (an exact-tie artefact, not a violation).
	Flips        int `json:"flips,omitempty"`
	MixedAnswers int `json:"mixed_answers"`
	TieRelaxed   int `json:"tie_relaxed,omitempty"`
	// MixedSamples describes the first few mixed answers.
	MixedSamples []string `json:"mixed_samples,omitempty"`

	LatencyMs  LatencyDoc    `json:"latency"`
	Provenance ProvenanceDoc `json:"provenance"`
	StatsDelta StatsDeltaDoc `json:"stats_delta"`
	// Load is the venue's /loadz block scraped right after the phase
	// finished: per method, one windowed load view per served window
	// (10s/1m/5m). The shortest window approximates the phase's own
	// traffic; wider windows blend preceding phases in. Absent against
	// daemons predating /loadz (the scrape is best-effort).
	Load map[string][]server.LoadWindowDoc `json:"load,omitempty"`
	// Stages is the per-stage latency breakdown from the daemon's
	// stage histograms (absent against daemons predating them).
	Stages []StageDeltaDoc `json:"stage_breakdown,omitempty"`
	// HistLatency is the server-side request-latency view of the same
	// phase, from the venue's request histogram delta.
	HistLatency *HistQuantilesDoc `json:"hist_latency,omitempty"`
	// HotPairs is the phase's top OD-pair traffic movement from the
	// /cachez heavy-hitter tables (absent against daemons predating
	// /cachez — both scrapes are best-effort).
	HotPairs []HotPairDeltaDoc `json:"hot_pairs,omitempty"`
	// EngineEffort is the phase's per-search effort movement from the
	// /statsz effort histograms (absent against daemons predating them
	// or when the phase ran no engine search).
	EngineEffort *EngineEffortDeltaDoc `json:"engine_effort,omitempty"`
	// Warnings flags disagreements between the client-side nearest-rank
	// percentiles and the server-side histogram quantiles beyond bucket
	// resolution — clock or accounting skew worth investigating, not a
	// verdict failure.
	Warnings []string `json:"warnings,omitempty"`
	// SearchesPerQuery is the phase's engine-search rate from the
	// /statsz delta: EngineSearches / Queries (0 when no queries were
	// counted server-side).
	SearchesPerQuery float64 `json:"searches_per_query"`
	// DurationSec is the phase's wall-clock span.
	DurationSec float64 `json:"duration_sec"`
}

// Verdict is one evaluated self-check.
type Verdict struct {
	Phase  string  `json:"phase,omitempty"`
	Metric string  `json:"metric"`
	Op     string  `json:"op"`
	Value  float64 `json:"value"`
	Actual float64 `json:"actual"`
	Pass   bool    `json:"pass"`
}

// String renders the verdict, e.g.
// `PASS flash-crowd searches_per_query < 0.25 (actual 0.04)`.
func (v Verdict) String() string {
	status := "FAIL"
	if v.Pass {
		status = "PASS"
	}
	scope := v.Phase
	if scope == "" {
		scope = "overall"
	}
	return fmt.Sprintf("%s %s %s %s %g (actual %.4g)", status, scope, v.Metric, v.Op, v.Value, v.Actual)
}

// Report is the structured outcome of one replay run — the
// BENCH_replay.json artifact.
type Report struct {
	Scenario string `json:"scenario"`
	Venue    string `json:"venue"`
	Seed     int64  `json:"seed"`
	Quick    bool   `json:"quick,omitempty"`
	// Fingerprint identifies the generated query stream: two reports
	// with equal fingerprints replayed the same day, so their numbers
	// are directly comparable.
	Fingerprint string `json:"stream_fingerprint"`
	// Target is the daemon the day was replayed against.
	Target      string    `json:"target"`
	Started     time.Time `json:"started"`
	DurationSec float64   `json:"duration_sec"`
	// Process is the daemon's process block from the final /statsz
	// scrape (absent against daemons predating it).
	Process *server.ProcessStatsDoc `json:"process,omitempty"`

	Phases   []PhaseReport `json:"phases"`
	Verdicts []Verdict     `json:"verdicts"`
	// Pass is the conjunction of every verdict.
	Pass bool `json:"pass"`
}

// WriteJSON writes the report as indented JSON (the artifact format).
func (r *Report) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// Summary renders a human-readable run summary (what the CLI prints).
func (r *Report) Summary() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "replay %s on %s (target %s, %d phases, %.1fs)\n",
		r.Scenario, r.Venue, r.Target, len(r.Phases), r.DurationSec)
	for i := range r.Phases {
		ph := &r.Phases[i]
		fmt.Fprintf(&sb, "  %-12s %5d queries  p50 %6.2fms  p95 %6.2fms  p99 %6.2fms  %0.3f searches/query",
			ph.Name, ph.Queries, ph.LatencyMs.P50, ph.LatencyMs.P95, ph.LatencyMs.P99, ph.SearchesPerQuery)
		if ph.Flips > 0 {
			fmt.Fprintf(&sb, "  flips %d mixed %d", ph.Flips, ph.MixedAnswers)
		}
		if ph.Errors > 0 || ph.Timeouts > 0 {
			fmt.Fprintf(&sb, "  errors %d timeouts %d", ph.Errors, ph.Timeouts)
		}
		sb.WriteByte('\n')
		for _, w := range ph.Warnings {
			fmt.Fprintf(&sb, "    warn: %s\n", w)
		}
	}
	for _, v := range r.Verdicts {
		fmt.Fprintf(&sb, "  %s\n", v)
	}
	if r.Pass {
		sb.WriteString("  ALL VERDICTS PASS\n")
	} else {
		sb.WriteString("  VERDICT FAILURE\n")
	}
	return sb.String()
}

// Cross-check thresholds: the histogram-vs-client comparison needs a
// population for nearest ranks to be meaningful, and allows a little
// absolute slack on top of bucket resolution (timestamps are taken at
// different points of the request path).
const (
	crossCheckMinCount = 20
	crossCheckSlackMs  = 1.0
)

// quantileMs renders a histogram quantile in milliseconds: the bucket
// upper bound, or the lower bound when the observation lands in the
// +Inf overflow bucket (so the value stays finite and JSON-encodable).
func quantileMs(s obs.HistogramSnapshot, q float64) float64 {
	lo, hi := s.QuantileBucket(q)
	if math.IsInf(hi, 1) {
		return lo * 1000
	}
	return hi * 1000
}

// addObservability fills the phase's stage breakdown and server-side
// latency quantiles from the before/after /statsz scrapes, and
// cross-checks the client-side percentiles against them. Both blocks
// stay absent against daemons that don't expose the histograms.
//
// The cross-check is one-sided: the server measures a strict subset of
// what the client's clock sees (no network, no client-side encode), so
// for every request server latency <= client latency, and a server
// histogram bucket that starts ABOVE the client-side percentile —
// beyond slack — cannot be explained by bucket resolution.
func addObservability(phr *PhaseReport, before, after *server.StatsResponse, venue string) {
	for _, name := range obs.StageNames() {
		d := after.Stages[name].Sub(before.Stages[name])
		if d.Count == 0 {
			continue
		}
		phr.Stages = append(phr.Stages, StageDeltaDoc{
			Stage:   name,
			Count:   d.Count,
			TotalMs: d.SumSeconds * 1000,
			MeanMs:  d.MeanSeconds() * 1000,
			P95Ms:   quantileMs(d, 0.95),
		})
	}
	bReq := before.Venues[venue].Requests
	var delta obs.HistogramSnapshot
	for m, a := range after.Venues[venue].Requests {
		delta = delta.Add(a.Sub(bReq[m]))
	}
	if delta.Count == 0 {
		return
	}
	phr.HistLatency = &HistQuantilesDoc{
		Count: delta.Count,
		P50Ms: quantileMs(delta, 0.50),
		P95Ms: quantileMs(delta, 0.95),
		P99Ms: quantileMs(delta, 0.99),
	}
	if delta.Count < crossCheckMinCount {
		return
	}
	for _, c := range []struct {
		q      float64
		name   string
		client float64
	}{
		{0.50, "p50", phr.LatencyMs.P50},
		{0.95, "p95", phr.LatencyMs.P95},
		{0.99, "p99", phr.LatencyMs.P99},
	} {
		lo, _ := delta.QuantileBucket(c.q)
		if lo*1000 > c.client+crossCheckSlackMs {
			phr.Warnings = append(phr.Warnings, fmt.Sprintf(
				"server-side %s bucket starts at %.3fms, above client-side %s %.3fms + %.1fms slack — clock or accounting skew",
				c.name, lo*1000, c.name, c.client, crossCheckSlackMs))
		}
	}
}

// quantileCount renders a count-valued histogram quantile in raw
// units: the bucket upper bound, or the lower bound when the
// observation lands in the +Inf overflow bucket.
func quantileCount(s obs.HistogramSnapshot, q float64) float64 {
	lo, hi := s.QuantileBucket(q)
	if math.IsInf(hi, 1) {
		return lo
	}
	return hi
}

// addEffortDelta fills the phase's engine-effort movement from the
// before/after /statsz effort histograms, summed over the venue's
// method pools. Stays absent against daemons predating the histograms
// (nil EngineEffort maps) or when no engine search ran.
func addEffortDelta(phr *PhaseReport, before, after *server.StatsResponse, venue string) {
	bEff := before.Venues[venue].EngineEffort
	var pops, tv obs.HistogramSnapshot
	for m, a := range after.Venues[venue].EngineEffort {
		pops = pops.Add(a.Pops.Sub(bEff[m].Pops))
		tv = tv.Add(a.TVChecks.Sub(bEff[m].TVChecks))
	}
	if pops.Count == 0 {
		return
	}
	phr.EngineEffort = &EngineEffortDeltaDoc{
		Searches:     pops.Count,
		MeanPops:     pops.MeanSeconds(),
		P95Pops:      quantileCount(pops, 0.95),
		MeanTVChecks: tv.MeanSeconds(),
		P95TVChecks:  quantileCount(tv, 0.95),
	}
}

// hotPairsCap bounds the per-phase hot-pair listing: the heaviest
// movers tell the skew story, the long tail just bloats the artifact.
const hotPairsCap = 5

// hotPairDelta derives a phase's top OD-pair traffic movement from
// before/after /cachez scrapes: per-pair query deltas summed over the
// venue's method pools, heaviest first, capped at hotPairsCap rows.
// totalQueries (the phase's server-side query delta) scales Share.
// Pairs evicted from the space-saving table mid-phase under-count;
// pairs admitted by takeover inherit the evictee's weight — the table
// bounds the error (HotPairDoc.ErrBound) but the delta stays an
// estimate.
func hotPairDelta(before, after map[string]server.CacheMethodDoc, totalQueries int64) []HotPairDeltaDoc {
	if after == nil {
		return nil
	}
	type pk struct{ src, tgt string }
	base := make(map[pk]int64)
	for _, doc := range before {
		for _, p := range doc.TopPairs {
			base[pk{p.Src, p.Tgt}] += p.Queries
		}
	}
	moved := make(map[pk]int64)
	for _, doc := range after {
		for _, p := range doc.TopPairs {
			moved[pk{p.Src, p.Tgt}] += p.Queries
		}
	}
	var rows []HotPairDeltaDoc
	for k, q := range moved {
		d := q - base[k]
		if d <= 0 {
			continue
		}
		row := HotPairDeltaDoc{Src: k.src, Tgt: k.tgt, Queries: d}
		if totalQueries > 0 {
			row.Share = float64(d) / float64(totalQueries)
		}
		rows = append(rows, row)
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].Queries != rows[j].Queries {
			return rows[i].Queries > rows[j].Queries
		}
		if rows[i].Src != rows[j].Src {
			return rows[i].Src < rows[j].Src
		}
		return rows[i].Tgt < rows[j].Tgt
	})
	if len(rows) > hotPairsCap {
		rows = rows[:hotPairsCap]
	}
	return rows
}

// HotPairsTable renders the per-phase hot-pair movement as an aligned
// text table (printed by itspqreplay -v). Empty when no phase carries
// hot pairs (e.g. against a daemon predating /cachez).
func (r *Report) HotPairsTable() string {
	var sb strings.Builder
	header := false
	for i := range r.Phases {
		ph := &r.Phases[i]
		for _, hp := range ph.HotPairs {
			if !header {
				fmt.Fprintf(&sb, "%-14s %-24s %-24s %8s %7s\n", "phase", "src", "tgt", "queries", "share")
				header = true
			}
			fmt.Fprintf(&sb, "%-14s %-24s %-24s %8d %6.1f%%\n", ph.Name, hp.Src, hp.Tgt, hp.Queries, hp.Share*100)
		}
	}
	return sb.String()
}

// EffortTable renders the per-phase engine-effort movement as an
// aligned text table (printed by itspqreplay -v). Empty when no phase
// carries an effort delta.
func (r *Report) EffortTable() string {
	var sb strings.Builder
	header := false
	for i := range r.Phases {
		ph := &r.Phases[i]
		e := ph.EngineEffort
		if e == nil {
			continue
		}
		if !header {
			fmt.Fprintf(&sb, "%-14s %9s %10s %10s %13s %13s\n",
				"phase", "searches", "mean_pops", "p95_pops", "mean_tvcheck", "p95_tvcheck")
			header = true
		}
		fmt.Fprintf(&sb, "%-14s %9d %10.1f %10.1f %13.1f %13.1f\n",
			ph.Name, e.Searches, e.MeanPops, e.P95Pops, e.MeanTVChecks, e.P95TVChecks)
	}
	return sb.String()
}

// StageTable renders the per-phase stage latency breakdown as an
// aligned text table (what itspqreplay -v prints), with one request-
// histogram summary line per phase. Empty when the daemon exposed no
// stage histograms.
func (r *Report) StageTable() string {
	present := false
	for i := range r.Phases {
		if len(r.Phases[i].Stages) > 0 {
			present = true
			break
		}
	}
	if !present {
		return ""
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-14s %-8s %8s %10s %10s %12s\n",
		"phase", "stage", "count", "mean_ms", "p95_ms", "total_ms")
	for i := range r.Phases {
		ph := &r.Phases[i]
		for _, sd := range ph.Stages {
			fmt.Fprintf(&sb, "%-14s %-8s %8d %10.3f %10.3f %12.1f\n",
				ph.Name, sd.Stage, sd.Count, sd.MeanMs, sd.P95Ms, sd.TotalMs)
		}
		if h := ph.HistLatency; h != nil {
			fmt.Fprintf(&sb, "%-14s %-8s %8d  server-side request p50<=%.3fms p95<=%.3fms p99<=%.3fms\n",
				ph.Name, "request", h.Count, h.P50Ms, h.P95Ms, h.P99Ms)
		}
	}
	return sb.String()
}

// ReasonsTable renders the per-phase decision-provenance movement —
// the miss and solo reason tallies from the /statsz deltas — as an
// aligned text table (printed by itspqreplay -v after the stage
// table). Zero rows are skipped; empty when no phase recorded any
// reason (e.g. against a daemon predating provenance).
func (r *Report) ReasonsTable() string {
	var sb strings.Builder
	header := false
	for i := range r.Phases {
		ph := &r.Phases[i]
		for _, rc := range ph.StatsDelta.Reasons.Counts() {
			if rc.Count == 0 {
				continue
			}
			if !header {
				fmt.Fprintf(&sb, "%-14s %-5s %-22s %8s\n", "phase", "kind", "reason", "count")
				header = true
			}
			kind := "solo"
			if rc.Reason.IsMiss() {
				kind = "miss"
			}
			fmt.Fprintf(&sb, "%-14s %-5s %-22s %8d\n", ph.Name, kind, rc.Reason.String(), rc.Count)
		}
	}
	return sb.String()
}

// phase returns the named phase report, or nil.
func (r *Report) phase(name string) *PhaseReport {
	for i := range r.Phases {
		if r.Phases[i].Name == name {
			return &r.Phases[i]
		}
	}
	return nil
}

// metricValue reads one metric from a phase report.
func (ph *PhaseReport) metricValue(metric string) float64 {
	switch metric {
	case MetricQueries:
		return float64(ph.Queries)
	case MetricErrors:
		return float64(ph.Errors)
	case MetricTimeouts:
		return float64(ph.Timeouts)
	case MetricMixedAnswers:
		return float64(ph.MixedAnswers)
	case MetricSearchesPerQuery:
		return ph.SearchesPerQuery
	case MetricP50Ms:
		return ph.LatencyMs.P50
	case MetricP95Ms:
		return ph.LatencyMs.P95
	case MetricP99Ms:
		return ph.LatencyMs.P99
	case MetricMaxMs:
		return ph.LatencyMs.Max
	case MetricCoalesced:
		return float64(ph.Provenance.Coalesced)
	case MetricExactHits:
		return float64(ph.Provenance.Exact)
	case MetricWindowHits:
		return float64(ph.Provenance.Window)
	case MetricSkeletonHits:
		return float64(ph.Provenance.Skeleton)
	}
	return math.NaN()
}

// overallMetric aggregates a metric across phases. Counts sum;
// searches/query re-derives from the summed deltas; percentile
// metrics take the worst phase (a regression anywhere must trip a
// bound, and per-phase latency populations are not mergeable from
// percentiles alone).
func (r *Report) overallMetric(metric string) float64 {
	switch metric {
	case MetricSearchesPerQuery:
		var searches, queries int64
		for i := range r.Phases {
			searches += r.Phases[i].StatsDelta.EngineSearches
			queries += r.Phases[i].StatsDelta.Queries
		}
		if queries == 0 {
			return 0
		}
		return float64(searches) / float64(queries)
	case MetricP50Ms, MetricP95Ms, MetricP99Ms, MetricMaxMs:
		worst := 0.0
		for i := range r.Phases {
			if v := r.Phases[i].metricValue(metric); v > worst {
				worst = v
			}
		}
		return worst
	default:
		sum := 0.0
		for i := range r.Phases {
			sum += r.Phases[i].metricValue(metric)
		}
		return sum
	}
}

// evaluate fills Verdicts and Pass from the scenario's checks.
func (r *Report) evaluate(checks []Check) {
	r.Pass = true
	r.Verdicts = make([]Verdict, 0, len(checks))
	for _, c := range checks {
		var actual float64
		if c.Phase == "" {
			actual = r.overallMetric(c.Metric)
		} else if ph := r.phase(c.Phase); ph != nil {
			actual = ph.metricValue(c.Metric)
		} else {
			actual = math.NaN()
		}
		v := Verdict{Phase: c.Phase, Metric: c.Metric, Op: c.Op, Value: c.Value,
			Actual: actual, Pass: !math.IsNaN(actual) && c.compare(actual)}
		if !v.Pass {
			r.Pass = false
		}
		r.Verdicts = append(r.Verdicts, v)
	}
}

// percentile returns the nearest-rank percentile of an ascending
// sorted sample (p in (0, 100]); 0 for an empty sample.
func percentile(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	rank := int(math.Ceil(p / 100 * float64(len(sorted))))
	if rank < 1 {
		rank = 1
	}
	if rank > len(sorted) {
		rank = len(sorted)
	}
	return sorted[rank-1]
}

// latencyDoc summarises a latency sample (milliseconds, unsorted).
func latencyDoc(ms []float64) LatencyDoc {
	if len(ms) == 0 {
		return LatencyDoc{}
	}
	sorted := append([]float64(nil), ms...)
	sort.Float64s(sorted)
	return LatencyDoc{
		P50: percentile(sorted, 50),
		P95: percentile(sorted, 95),
		P99: percentile(sorted, 99),
		Max: sorted[len(sorted)-1],
	}
}
