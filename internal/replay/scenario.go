// Package replay is the workload replay harness: a deterministic,
// seeded load generator plus an HTTP driver that replays a synthetic
// "day in the venue" against a live query daemon (internal/server over
// httptest, or a real itspqd reached by URL) and records what the
// serving stack actually did — per-phase latency percentiles, engine
// searches per query, cache/window/coalesce provenance counts scraped
// from /statsz, error and timeout tallies, and schedule-flip
// consistency checks — as a structured BENCH_replay.json artifact with
// embedded pass/fail verdicts.
//
// A Scenario is a declarative phase list: each Phase states how many
// queries to send, with what concurrency and arrival shape (closed
// loop or synchronised waves), which OD partition pairs to skew
// towards, the departure-time window, the method mix, an optional hot
// template set (a finite set of repeated query instances — the shape
// flash crowds take), and optional mid-phase schedule flips (PUT
// /schedules racing the traffic). The query stream is a pure function
// of (scenario, seed): the driver's wall-clock measurements vary run
// to run, but the queries themselves are byte-identical across runs
// and across PRs, so two BENCH_replay.json artifacts are always
// measuring the same replayed day.
//
// Flip phases are verified from the outside: every response must
// byte-match the answer a sequential core.Engine would give under one
// of the schedule states the daemon could legally have been in when it
// served the query (the states acknowledged before the query was sent,
// up to the states initiated before its response arrived). An answer
// matching no such state is a "mixed" answer — half pre-flip, half
// post-flip — which the serving invariants of PRs 2–5 promise can
// never happen; the flip-storm verdict requires zero of them.
package replay

import (
	"fmt"
	"sort"
	"strings"

	"indoorpath/internal/temporal"
)

// Scenario is one declarative replay workload: a named phase list over
// one served venue, plus the self-check verdicts the resulting report
// is judged by.
type Scenario struct {
	// Name identifies the scenario in reports and CLI flags.
	Name string `json:"name"`
	// Venue is the served venue ID, which must be one of the built-in
	// presets (the generator rebuilds the preset model locally to
	// sample OD points and compute flip oracles, so the daemon under
	// test must serve the same preset under the same ID — exactly what
	// `itspqd -preset` does).
	Venue string `json:"venue"`
	// Seed drives every random choice of the query stream. Same seed +
	// same scenario = byte-identical stream.
	Seed int64 `json:"seed"`
	// Phases run in order.
	Phases []Phase `json:"phases"`
	// Checks are the self-check verdicts evaluated over the finished
	// report.
	Checks []Check `json:"checks"`
}

// Phase is one segment of the replayed day.
type Phase struct {
	// Name identifies the phase in reports and checks.
	Name string `json:"name"`
	// Count is the number of queries this phase sends.
	Count int `json:"count"`
	// Concurrency is the number of parallel clients; <= 0 means 1.
	Concurrency int `json:"concurrency,omitempty"`
	// Waves synchronises the clients: all Concurrency queries of a
	// wave are fired together and the next wave starts only when the
	// wave has drained. This is the arrival shape that exercises the
	// coalescer (concurrent solo arrivals inside one hold window);
	// false means a closed loop where each client sends back to back.
	Waves bool `json:"waves,omitempty"`
	// Mix weights the engine methods queries are assigned. The zero
	// value means all-asyn.
	Mix MethodMix `json:"mix"`
	// OD skews endpoint sampling over partition pairs: each query
	// picks a pair by weight, then uniform interior points in the two
	// partition rectangles. Partitions are referenced by name.
	OD []ODWeight `json:"od"`
	// WindowOpen/WindowClose bound the departure times sampled
	// (uniform, whole seconds, half-open [open, close)).
	WindowOpen  temporal.TimeOfDay `json:"window_open"`
	WindowClose temporal.TimeOfDay `json:"window_close"`
	// Templates, when positive, first generates this many fixed query
	// instances and then samples every query from that hot set — the
	// shape of a flash crowd (everyone asks the same few questions),
	// and the shape that makes flip oracles tractable. 0 means every
	// query is a fresh random instance.
	Templates int `json:"templates,omitempty"`
	// Speed is the walking speed in m/s for every query; 0 means the
	// paper's 5 km/h.
	Speed float64 `json:"speed,omitempty"`
	// Flips are mid-phase schedule updates racing the traffic. Phases
	// with flips must use Templates so every answer can be verified
	// against per-state engine oracles.
	Flips []Flip `json:"flips,omitempty"`
}

// MethodMix weights the pooled engine methods. Weights are relative;
// the zero value means all-asyn. The waiting method is deliberately
// absent: it has no pool and no comparable serving counters.
type MethodMix struct {
	Syn    float64 `json:"syn,omitempty"`
	Asyn   float64 `json:"asyn,omitempty"`
	Static float64 `json:"static,omitempty"`
}

// normalised returns the mix with an all-asyn fallback.
func (m MethodMix) normalised() MethodMix {
	if m.Syn <= 0 && m.Asyn <= 0 && m.Static <= 0 {
		return MethodMix{Asyn: 1}
	}
	if m.Syn < 0 {
		m.Syn = 0
	}
	if m.Asyn < 0 {
		m.Asyn = 0
	}
	if m.Static < 0 {
		m.Static = 0
	}
	return m
}

// ODWeight is one weighted OD partition pair.
type ODWeight struct {
	Src    string  `json:"src"`
	Tgt    string  `json:"tgt"`
	Weight float64 `json:"weight"`
}

// Flip is one mid-phase schedule update: after the given fraction of
// the phase's queries has been dispatched, the driver PUTs the update
// map (door name -> ATI strings; nil = always open, empty = always
// closed — the wire convention) while traffic keeps flowing.
type Flip struct {
	// After is the fraction of the phase's query stream dispatched
	// before the flip fires, in (0, 1).
	After float64 `json:"after"`
	// Updates is the schedule update, by door name.
	Updates map[string][]string `json:"updates"`
}

// Check is one self-check verdict: compare a report metric against a
// static bound. Phase names the phase the metric is read from; empty
// means the whole run.
type Check struct {
	Phase  string  `json:"phase,omitempty"`
	Metric string  `json:"metric"`
	Op     string  `json:"op"`
	Value  float64 `json:"value"`
}

// Metric names Check understands (per phase and overall).
const (
	MetricQueries          = "queries"            // queries sent
	MetricErrors           = "errors"             // non-2xx answers (504s excluded)
	MetricTimeouts         = "timeouts"           // 504 answers
	MetricMixedAnswers     = "mixed_answers"      // flip answers matching no legal schedule state
	MetricSearchesPerQuery = "searches_per_query" // engine searches / served queries, from /statsz deltas
	MetricP50Ms            = "p50_ms"
	MetricP95Ms            = "p95_ms"
	MetricP99Ms            = "p99_ms"
	MetricMaxMs            = "max_ms"
	MetricCoalesced        = "coalesced"     // answers flagged coalesced
	MetricExactHits        = "exact_hits"    // answers flagged hit=exact
	MetricWindowHits       = "window_hits"   // answers flagged hit=window
	MetricSkeletonHits     = "skeleton_hits" // answers flagged hit=skeleton
)

// validMetrics is the closed set of metric names.
var validMetrics = map[string]bool{
	MetricQueries: true, MetricErrors: true, MetricTimeouts: true,
	MetricMixedAnswers: true, MetricSearchesPerQuery: true,
	MetricP50Ms: true, MetricP95Ms: true, MetricP99Ms: true, MetricMaxMs: true,
	MetricCoalesced: true, MetricExactHits: true, MetricWindowHits: true,
	MetricSkeletonHits: true,
}

// compare applies the check's operator.
func (c Check) compare(actual float64) bool {
	switch c.Op {
	case "<":
		return actual < c.Value
	case "<=":
		return actual <= c.Value
	case ">":
		return actual > c.Value
	case ">=":
		return actual >= c.Value
	case "==":
		return actual == c.Value
	}
	return false
}

// String renders the check, e.g. `flash-crowd searches_per_query < 0.25`.
func (c Check) String() string {
	scope := c.Phase
	if scope == "" {
		scope = "overall"
	}
	return fmt.Sprintf("%s %s %s %g", scope, c.Metric, c.Op, c.Value)
}

// Validate checks scenario well-formedness: non-empty phases with
// positive counts, known check metrics/operators bound to existing
// phases, flip fractions in (0,1), and the flip-phases-are-templated
// rule (answer verification needs a finite instance set).
func (sc *Scenario) Validate() error {
	if sc.Name == "" {
		return fmt.Errorf("replay: scenario has no name")
	}
	if sc.Venue == "" {
		return fmt.Errorf("replay: scenario %q names no venue", sc.Name)
	}
	if len(sc.Phases) == 0 {
		return fmt.Errorf("replay: scenario %q has no phases", sc.Name)
	}
	names := make(map[string]bool, len(sc.Phases))
	for i := range sc.Phases {
		ph := &sc.Phases[i]
		if ph.Name == "" {
			return fmt.Errorf("replay: scenario %q: phase %d has no name", sc.Name, i)
		}
		if names[ph.Name] {
			return fmt.Errorf("replay: scenario %q: duplicate phase %q", sc.Name, ph.Name)
		}
		names[ph.Name] = true
		if ph.Count <= 0 {
			return fmt.Errorf("replay: phase %q: count must be positive", ph.Name)
		}
		if len(ph.OD) == 0 {
			return fmt.Errorf("replay: phase %q: no OD pairs", ph.Name)
		}
		for _, od := range ph.OD {
			if od.Weight <= 0 {
				return fmt.Errorf("replay: phase %q: OD %s->%s weight must be positive", ph.Name, od.Src, od.Tgt)
			}
		}
		if !ph.WindowOpen.Valid() || !ph.WindowClose.Valid() || ph.WindowOpen >= ph.WindowClose {
			return fmt.Errorf("replay: phase %q: bad departure window [%v, %v)", ph.Name, ph.WindowOpen, ph.WindowClose)
		}
		if ph.Templates < 0 {
			return fmt.Errorf("replay: phase %q: negative template count", ph.Name)
		}
		if len(ph.Flips) > 0 && ph.Templates == 0 {
			return fmt.Errorf("replay: phase %q: flips require a template set (answers are verified against per-state oracles)", ph.Name)
		}
		prev := 0.0
		for _, f := range ph.Flips {
			if f.After <= 0 || f.After >= 1 {
				return fmt.Errorf("replay: phase %q: flip fraction %g outside (0, 1)", ph.Name, f.After)
			}
			if f.After < prev {
				return fmt.Errorf("replay: phase %q: flips out of order", ph.Name)
			}
			prev = f.After
			if len(f.Updates) == 0 {
				return fmt.Errorf("replay: phase %q: empty flip update", ph.Name)
			}
		}
	}
	for _, c := range sc.Checks {
		if !validMetrics[c.Metric] {
			return fmt.Errorf("replay: check %s: unknown metric %q", c, c.Metric)
		}
		switch c.Op {
		case "<", "<=", ">", ">=", "==":
		default:
			return fmt.Errorf("replay: check %s: unknown operator %q", c, c.Op)
		}
		if c.Phase != "" && !names[c.Phase] {
			return fmt.Errorf("replay: check %s: unknown phase %q", c, c.Phase)
		}
	}
	return nil
}

// Built-in scenario names.
const (
	ScenarioSteady       = "steady"
	ScenarioRushHour     = "rush-hour"
	ScenarioFlashCrowd   = "flash-crowd"
	ScenarioFlipStorm    = "flip-storm"
	ScenarioNeighborhood = "neighborhood"
)

// Scenarios lists the built-in scenario names, sorted.
func Scenarios() []string {
	out := []string{ScenarioSteady, ScenarioRushHour, ScenarioFlashCrowd, ScenarioFlipStorm, ScenarioNeighborhood}
	sort.Strings(out)
	return out
}

// hospitalVisiting / hospitalPharmacy are the hospital preset's
// original door schedules, restated for restore flips so a replayed
// day against a persistent daemon ends where it began.
var (
	hospitalVisiting = []string{"10:00-12:00", "14:00-18:00"}
	hospitalPharmacy = []string{"8:00-20:00"}
)

// Builtin returns a built-in scenario by name. quick shrinks the
// per-phase counts 10x for CI smoke runs and tests; the stream stays
// deterministic per (name, quick, seed). The returned scenario is a
// fresh copy the caller may tweak (Seed in particular).
func Builtin(name string, quick bool) (*Scenario, error) {
	count := func(nQuick int) int {
		if quick {
			return nQuick
		}
		return nQuick * 10
	}
	var sc *Scenario
	switch name {
	case ScenarioSteady:
		sc = &Scenario{
			Name:  ScenarioSteady,
			Venue: "hospital",
			Seed:  1,
			Phases: []Phase{{
				Name:        "steady",
				Count:       count(120),
				Concurrency: 4,
				Mix:         MethodMix{Syn: 1, Asyn: 2, Static: 1},
				OD: []ODWeight{
					{Src: "lobby", Tgt: "pharmacy", Weight: 2},
					{Src: "emergency", Tgt: "ward-2", Weight: 2},
					{Src: "corridor", Tgt: "ward-5", Weight: 1},
					{Src: "pharmacy", Tgt: "emergency", Weight: 1},
				},
				WindowOpen:  temporal.MustParse("10:30"),
				WindowClose: temporal.MustParse("11:30"),
				Templates:   16,
			}},
			Checks: []Check{
				{Metric: MetricErrors, Op: "==", Value: 0},
				{Metric: MetricTimeouts, Op: "==", Value: 0},
				{Metric: MetricP99Ms, Op: "<", Value: 1500},
			},
		}
	case ScenarioRushHour:
		// The flagship "day in the venue": a dawn trickle, the
		// rush-hour OD-skewed wave (fresh random endpoints — nothing
		// shares an exact point, so only the skeleton store's
		// point-free composition can absorb it), a flash crowd on one
		// hot OD pair, a flip storm racing schedule updates against
		// traffic, and an afternoon taper.
		sc = &Scenario{
			Name:  ScenarioRushHour,
			Venue: "hospital",
			Seed:  1,
			Phases: []Phase{
				{
					Name:        "dawn",
					Count:       count(40),
					Concurrency: 2,
					Mix:         MethodMix{Asyn: 3, Static: 1},
					OD: []ODWeight{
						{Src: "lobby", Tgt: "emergency", Weight: 2},
						{Src: "emergency", Tgt: "pharmacy", Weight: 1},
					},
					WindowOpen:  temporal.MustParse("8:30"),
					WindowClose: temporal.MustParse("9:30"),
				},
				{
					Name:        "rush",
					Count:       count(200),
					Concurrency: 8,
					Waves:       true,
					Mix:         MethodMix{Syn: 1, Asyn: 2, Static: 1},
					OD: []ODWeight{
						{Src: "lobby", Tgt: "ward-1", Weight: 5},
						{Src: "lobby", Tgt: "ward-2", Weight: 3},
						{Src: "emergency", Tgt: "pharmacy", Weight: 2},
						{Src: "corridor", Tgt: "ward-4", Weight: 1},
						{Src: "pharmacy", Tgt: "ward-6", Weight: 1},
					},
					WindowOpen:  temporal.MustParse("10:15"),
					WindowClose: temporal.MustParse("11:45"),
				},
				{
					Name:        "flash-crowd",
					Count:       count(200),
					Concurrency: 16,
					Waves:       true,
					Mix:         MethodMix{Asyn: 1},
					OD: []ODWeight{
						{Src: "emergency", Tgt: "ward-1", Weight: 1},
					},
					WindowOpen:  temporal.MustParse("11:00"),
					WindowClose: temporal.MustParse("11:10"),
					Templates:   8,
				},
				{
					Name:        "flip-storm",
					Count:       count(120),
					Concurrency: 8,
					Waves:       true,
					Mix:         MethodMix{Syn: 1, Asyn: 1, Static: 1},
					OD: []ODWeight{
						{Src: "emergency", Tgt: "ward-1", Weight: 2},
						{Src: "lobby", Tgt: "pharmacy", Weight: 1},
					},
					WindowOpen:  temporal.MustParse("11:00"),
					WindowClose: temporal.MustParse("11:30"),
					Templates:   6,
					Flips: []Flip{
						{After: 0.25, Updates: map[string][]string{"ward-1-door": {}}},
						{After: 0.50, Updates: map[string][]string{"ward-1-door": nil, "pharmacy-corridor": {}}},
						{After: 0.75, Updates: map[string][]string{"ward-1-door": hospitalVisiting, "pharmacy-corridor": hospitalPharmacy}},
					},
				},
				{
					Name:        "taper",
					Count:       count(40),
					Concurrency: 2,
					Mix:         MethodMix{Asyn: 2, Syn: 1},
					OD: []ODWeight{
						{Src: "corridor", Tgt: "ward-3", Weight: 1},
						{Src: "lobby", Tgt: "pharmacy", Weight: 1},
					},
					WindowOpen:  temporal.MustParse("14:30"),
					WindowClose: temporal.MustParse("15:30"),
					Templates:   12,
				},
			},
			Checks: []Check{
				{Metric: MetricErrors, Op: "==", Value: 0},
				{Metric: MetricTimeouts, Op: "==", Value: 0},
				{Metric: MetricMixedAnswers, Op: "==", Value: 0},
				// The rush wave draws fresh random endpoints, so the
				// point-keyed caches score ~0 on it; with the skeleton
				// store on it must compose point-free answers and stay
				// at or under half an engine search per query.
				{Phase: "rush", Metric: MetricSkeletonHits, Op: ">", Value: 0},
				{Phase: "rush", Metric: MetricSearchesPerQuery, Op: "<=", Value: 0.5},
				{Phase: "flash-crowd", Metric: MetricSearchesPerQuery, Op: "<", Value: 0.25},
				{Phase: "flip-storm", Metric: MetricMixedAnswers, Op: "==", Value: 0},
				// Generous static latency bound: the regression gate for
				// CI, far above anything a healthy run produces.
				{Metric: MetricP99Ms, Op: "<", Value: 1500},
			},
		}
	case ScenarioFlashCrowd:
		sc = &Scenario{
			Name:  ScenarioFlashCrowd,
			Venue: "hospital",
			Seed:  1,
			Phases: []Phase{{
				Name:        "flash-crowd",
				Count:       count(200),
				Concurrency: 16,
				Waves:       true,
				Mix:         MethodMix{Asyn: 1},
				OD: []ODWeight{
					{Src: "emergency", Tgt: "ward-1", Weight: 1},
				},
				WindowOpen:  temporal.MustParse("11:00"),
				WindowClose: temporal.MustParse("11:10"),
				Templates:   8,
			}},
			Checks: []Check{
				{Metric: MetricErrors, Op: "==", Value: 0},
				{Metric: MetricTimeouts, Op: "==", Value: 0},
				{Phase: "flash-crowd", Metric: MetricSearchesPerQuery, Op: "<", Value: 0.25},
			},
		}
	case ScenarioFlipStorm:
		sc = &Scenario{
			Name:  ScenarioFlipStorm,
			Venue: "hospital",
			Seed:  1,
			Phases: []Phase{{
				Name:        "flip-storm",
				Count:       count(120),
				Concurrency: 8,
				Waves:       true,
				Mix:         MethodMix{Syn: 1, Asyn: 1, Static: 1},
				OD: []ODWeight{
					{Src: "emergency", Tgt: "ward-1", Weight: 2},
					{Src: "lobby", Tgt: "pharmacy", Weight: 1},
				},
				WindowOpen:  temporal.MustParse("11:00"),
				WindowClose: temporal.MustParse("11:30"),
				Templates:   6,
				Flips: []Flip{
					{After: 0.25, Updates: map[string][]string{"ward-1-door": {}}},
					{After: 0.50, Updates: map[string][]string{"ward-1-door": nil, "pharmacy-corridor": {}}},
					{After: 0.75, Updates: map[string][]string{"ward-1-door": hospitalVisiting, "pharmacy-corridor": hospitalPharmacy}},
				},
			}},
			Checks: []Check{
				{Metric: MetricErrors, Op: "==", Value: 0},
				{Metric: MetricTimeouts, Op: "==", Value: 0},
				{Metric: MetricMixedAnswers, Op: "==", Value: 0},
			},
		}
	case ScenarioNeighborhood:
		// The point-free motivator: waves of queries between the same
		// hot partition pairs with every endpoint independently
		// jittered — Templates is deliberately 0, so no two queries
		// repeat an exact point and the exact/window caches score ~0.
		// Only skeleton composition can absorb the wave. A short scout
		// phase sends the first travellers through each pair (their
		// misses build the door-to-door families), then the jittered
		// crowd arrives and must compose: the verdicts require skeleton
		// hits on the wire and at most half an engine search per query.
		// Departures stay inside the 10:00–12:00 visiting-hours
		// checkpoint slot so one family per pair covers the whole day
		// segment being replayed.
		sc = &Scenario{
			Name:  ScenarioNeighborhood,
			Venue: "hospital",
			Seed:  1,
			Phases: []Phase{
				{
					Name:        "scout",
					Count:       count(6),
					Concurrency: 1,
					Mix:         MethodMix{Asyn: 1},
					OD: []ODWeight{
						{Src: "emergency", Tgt: "ward-1", Weight: 3},
						{Src: "lobby", Tgt: "pharmacy", Weight: 2},
					},
					WindowOpen:  temporal.MustParse("10:15"),
					WindowClose: temporal.MustParse("10:30"),
				},
				{
					Name:        "neighborhood",
					Count:       count(200),
					Concurrency: 16,
					Waves:       true,
					Mix:         MethodMix{Asyn: 1},
					OD: []ODWeight{
						{Src: "emergency", Tgt: "ward-1", Weight: 3},
						{Src: "lobby", Tgt: "pharmacy", Weight: 2},
					},
					WindowOpen:  temporal.MustParse("10:30"),
					WindowClose: temporal.MustParse("11:30"),
				},
			},
			Checks: []Check{
				{Metric: MetricErrors, Op: "==", Value: 0},
				{Metric: MetricTimeouts, Op: "==", Value: 0},
				{Phase: "neighborhood", Metric: MetricSkeletonHits, Op: ">", Value: 0},
				{Phase: "neighborhood", Metric: MetricSearchesPerQuery, Op: "<=", Value: 0.5},
			},
		}
	default:
		return nil, fmt.Errorf("replay: unknown scenario %q (want one of %s)", name, strings.Join(Scenarios(), ", "))
	}
	if err := sc.Validate(); err != nil {
		return nil, err
	}
	return sc, nil
}
