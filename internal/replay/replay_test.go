package replay

import (
	"reflect"
	"testing"

	"indoorpath/internal/server"
	"indoorpath/internal/temporal"
)

// goldenFingerprints pins the generated query stream of every built-in
// scenario (quick variant, default seed). The stream is a pure function
// of (scenario, seed), so these only change when a scenario definition
// or the generator itself changes — which is exactly what this test is
// for: replay diffs across PRs are apples-to-apples only while the
// fingerprint holds. If you change a scenario DELIBERATELY, update its
// digest here (run `go test ./internal/replay -run TestStreamGolden -v`
// and copy the printed got value) and say so in the PR.
var goldenFingerprints = map[string]string{
	ScenarioSteady:       "bd6225cb7945edf1cf8f3a6f66fd513e6fd273325f1f21497a3dc08e82f47e4a",
	ScenarioRushHour:     "6820214ce013982bd11aab0cd09ad152937d86e78aecd5e6bad1b9252acef0ec",
	ScenarioFlashCrowd:   "c62cc045dfc0f9ced53a3ad8726c8b96222010068f27072dcba1951aa1ba36e1",
	ScenarioFlipStorm:    "2e7093ceeb8ad8daabc70df9305f7ccc5b0dc84a49898a82e9044cd780fd9e92",
	ScenarioNeighborhood: "ce6781559ad8334b3da5fc503ba759ade0ca27359d9476a37016c5c5fbbbf8c5",
}

func generateBuiltin(t *testing.T, name string, quick bool) *Stream {
	t.Helper()
	sc, err := Builtin(name, quick)
	if err != nil {
		t.Fatal(err)
	}
	v, err := server.PresetVenue(sc.Venue)
	if err != nil {
		t.Fatal(err)
	}
	st, err := sc.Generate(v)
	if err != nil {
		t.Fatal(err)
	}
	return st
}

func TestStreamGolden(t *testing.T) {
	for name, want := range goldenFingerprints {
		st := generateBuiltin(t, name, true)
		if got := st.Fingerprint(); got != want {
			t.Errorf("%s: fingerprint changed\n got %s\nwant %s\n(deliberate scenario/generator change? update goldenFingerprints)", name, got, want)
		}
	}
}

// TestStreamDeterminism regenerates each stream from a fresh scenario
// copy and requires the full query streams — not just digests — to be
// identical, for both size variants.
func TestStreamDeterminism(t *testing.T) {
	for _, name := range Scenarios() {
		for _, quick := range []bool{true, false} {
			a := generateBuiltin(t, name, quick)
			b := generateBuiltin(t, name, quick)
			if a.Fingerprint() != b.Fingerprint() {
				t.Fatalf("%s quick=%v: fingerprints differ across generations", name, quick)
			}
			for i := range a.Phases {
				if !reflect.DeepEqual(a.Phases[i].Queries, b.Phases[i].Queries) {
					t.Fatalf("%s quick=%v: phase %s queries differ", name, quick, a.Phases[i].Phase.Name)
				}
				if !reflect.DeepEqual(a.Phases[i].Templates, b.Phases[i].Templates) {
					t.Fatalf("%s quick=%v: phase %s templates differ", name, quick, a.Phases[i].Phase.Name)
				}
			}
		}
	}
}

func TestSeedChangesStream(t *testing.T) {
	sc, err := Builtin(ScenarioSteady, true)
	if err != nil {
		t.Fatal(err)
	}
	v, err := server.PresetVenue(sc.Venue)
	if err != nil {
		t.Fatal(err)
	}
	a, err := sc.Generate(v)
	if err != nil {
		t.Fatal(err)
	}
	sc.Seed = 2
	b, err := sc.Generate(v)
	if err != nil {
		t.Fatal(err)
	}
	if a.Fingerprint() == b.Fingerprint() {
		t.Fatal("different seeds produced identical streams")
	}
}

// TestBuiltinShapes checks the size contract (quick is exactly 10x
// smaller) and that every built-in validates.
func TestBuiltinShapes(t *testing.T) {
	for _, name := range Scenarios() {
		quick := generateBuiltin(t, name, true)
		full := generateBuiltin(t, name, false)
		if got, want := full.TotalQueries(), 10*quick.TotalQueries(); got != want {
			t.Errorf("%s: full stream has %d queries, want 10x quick = %d", name, got, want)
		}
		for i := range quick.Phases {
			ps := &quick.Phases[i]
			if ps.Phase.Templates > 0 && len(ps.Templates) != ps.Phase.Templates {
				t.Errorf("%s phase %s: %d templates generated, want %d", name, ps.Phase.Name, len(ps.Templates), ps.Phase.Templates)
			}
			for qi, q := range ps.Queries {
				if ps.Phase.Templates > 0 {
					if q.Template < 0 || q.Template >= ps.Phase.Templates {
						t.Fatalf("%s phase %s query %d: template %d out of range", name, ps.Phase.Name, qi, q.Template)
					}
					if !reflect.DeepEqual(q, ps.Templates[q.Template]) {
						t.Fatalf("%s phase %s query %d: not a copy of template %d", name, ps.Phase.Name, qi, q.Template)
					}
				} else if q.Template != -1 {
					t.Fatalf("%s phase %s query %d: fresh instance has template %d", name, ps.Phase.Name, qi, q.Template)
				}
				if q.At != temporal.TimeOfDay(int(q.At)) {
					t.Fatalf("%s phase %s query %d: departure %v not a whole second", name, ps.Phase.Name, qi, q.At)
				}
				if q.At < ps.Phase.WindowOpen || q.At >= ps.Phase.WindowClose {
					t.Fatalf("%s phase %s query %d: departure %v outside window", name, ps.Phase.Name, qi, q.At)
				}
			}
		}
	}
}

func TestValidateRejects(t *testing.T) {
	base := func() *Scenario {
		sc, err := Builtin(ScenarioSteady, true)
		if err != nil {
			t.Fatal(err)
		}
		return sc
	}
	cases := []struct {
		name  string
		mutil func(*Scenario)
	}{
		{"no phases", func(sc *Scenario) { sc.Phases = nil }},
		{"zero count", func(sc *Scenario) { sc.Phases[0].Count = 0 }},
		{"no OD", func(sc *Scenario) { sc.Phases[0].OD = nil }},
		{"bad window", func(sc *Scenario) { sc.Phases[0].WindowClose = sc.Phases[0].WindowOpen }},
		{"flip without templates", func(sc *Scenario) {
			sc.Phases[0].Templates = 0
			sc.Phases[0].Flips = []Flip{{After: 0.5, Updates: map[string][]string{"d": nil}}}
		}},
		{"flip fraction out of range", func(sc *Scenario) {
			sc.Phases[0].Flips = []Flip{{After: 1.5, Updates: map[string][]string{"d": nil}}}
		}},
		{"unknown check metric", func(sc *Scenario) {
			sc.Checks = []Check{{Metric: "nope", Op: "<", Value: 1}}
		}},
		{"unknown check phase", func(sc *Scenario) {
			sc.Checks = []Check{{Phase: "nope", Metric: MetricErrors, Op: "==", Value: 0}}
		}},
		{"unknown check op", func(sc *Scenario) {
			sc.Checks = []Check{{Metric: MetricErrors, Op: "!=", Value: 0}}
		}},
	}
	for _, tc := range cases {
		sc := base()
		tc.mutil(sc)
		if err := sc.Validate(); err == nil {
			t.Errorf("%s: Validate accepted an invalid scenario", tc.name)
		}
	}
}

func TestUnknownScenario(t *testing.T) {
	if _, err := Builtin("nope", true); err == nil {
		t.Fatal("unknown scenario accepted")
	}
	if _, err := Builtin("nope", false); err == nil {
		t.Fatal("unknown scenario accepted")
	}
}

func TestPercentile(t *testing.T) {
	sorted := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	cases := []struct {
		p    float64
		want float64
	}{{50, 5}, {95, 10}, {99, 10}, {100, 10}, {10, 1}}
	for _, tc := range cases {
		if got := percentile(sorted, tc.p); got != tc.want {
			t.Errorf("percentile(%v) = %v, want %v", tc.p, got, tc.want)
		}
	}
	if got := percentile(nil, 50); got != 0 {
		t.Errorf("percentile(empty) = %v", got)
	}
	doc := latencyDoc([]float64{5, 1, 3, 2, 4})
	if doc.P50 != 3 || doc.Max != 5 {
		t.Errorf("latencyDoc = %+v", doc)
	}
}
