package replay

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"indoorpath/internal/model"
	"indoorpath/internal/server"
)

// Options configures a replay run.
type Options struct {
	// BaseURL is the daemon under test, e.g. "http://127.0.0.1:8080" or
	// an httptest server URL. Required.
	BaseURL string
	// Client is the HTTP client to drive with; nil means a fresh client
	// with no client-side timeout (the daemon enforces its own request
	// deadline, and a client-side abort would count as client_gone
	// server-side rather than a timeout).
	Client *http.Client
	// Quick is recorded in the report so two artifacts can't silently
	// compare a smoke run against a full day.
	Quick bool
	// Logf, when set, receives per-phase progress lines.
	Logf func(format string, args ...any)
}

// errorSampleCap bounds how many error/mixed samples a phase report
// keeps (the counts are always complete).
const errorSampleCap = 3

// Run replays the scenario against the daemon at opts.BaseURL and
// returns the structured report with its verdicts evaluated. The venue
// the scenario names must be served by the daemon as the same preset
// (Run verifies it is listed and rebuilds the preset model locally for
// endpoint sampling and flip oracles).
func Run(sc *Scenario, opts Options) (*Report, error) {
	if opts.BaseURL == "" {
		return nil, fmt.Errorf("replay: no base URL")
	}
	base := strings.TrimRight(opts.BaseURL, "/")
	client := opts.Client
	if client == nil {
		client = &http.Client{}
	}
	logf := opts.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}

	mv, err := server.PresetVenue(sc.Venue)
	if err != nil {
		return nil, err
	}
	stream, err := sc.Generate(mv)
	if err != nil {
		return nil, err
	}
	if err := checkVenueServed(client, base, sc.Venue); err != nil {
		return nil, err
	}

	rep := &Report{
		Scenario:    sc.Name,
		Venue:       sc.Venue,
		Seed:        sc.Seed,
		Quick:       opts.Quick,
		Fingerprint: stream.Fingerprint(),
		Target:      base,
		Started:     time.Now().UTC(),
		Phases:      make([]PhaseReport, 0, len(stream.Phases)),
	}
	start := time.Now()
	var lastStats *server.StatsResponse
	for i := range stream.Phases {
		ps := &stream.Phases[i]
		logf("phase %s: %d queries (concurrency %d, waves %v, flips %d)",
			ps.Phase.Name, len(ps.Queries), ps.Phase.Concurrency, ps.Phase.Waves, len(ps.Phase.Flips))
		phr, after, err := runPhase(client, base, sc.Venue, mv, ps)
		if err != nil {
			return nil, fmt.Errorf("replay: phase %q: %w", ps.Phase.Name, err)
		}
		lastStats = after
		rep.Phases = append(rep.Phases, *phr)
		logf("phase %s: p50 %.2fms p95 %.2fms p99 %.2fms, %.3f searches/query, %d errors, %d timeouts, %d mixed",
			phr.Name, phr.LatencyMs.P50, phr.LatencyMs.P95, phr.LatencyMs.P99,
			phr.SearchesPerQuery, phr.Errors, phr.Timeouts, phr.MixedAnswers)
	}
	rep.DurationSec = time.Since(start).Seconds()
	if lastStats != nil {
		rep.Process = lastStats.Process
	}
	rep.evaluate(sc.Checks)
	return rep, nil
}

// qresult is one query's recorded outcome; the executing goroutine is
// the only writer of its slot.
type qresult struct {
	latencyMs float64
	status    int // HTTP status; 0 = transport error
	errText   string
	found     bool
	hit       string
	coalesced bool
	sharedRun bool
	shared    bool
	template  int
	// lo/hi bracket the legal oracle states (flip phases only).
	lo, hi int
	match  matchResult
	// served is kept for mixed-answer diagnostics.
	served servedAnswer
}

// flipRunner fires a phase's schedule flips while traffic flows and
// tracks the initiated/acked counts that bracket every query's legal
// oracle states.
type flipRunner struct {
	base   string
	venue  string
	client *http.Client
	flips  []Flip
	// thresholds[k] is the 0-based query index whose dispatch triggers
	// flip k.
	thresholds []int
	fired      []atomic.Bool
	done       []chan struct{}
	// initiated counts flips whose PUT has been issued (incremented
	// BEFORE the request is sent: once issued, the daemon may apply it
	// at any moment). acked counts flips confirmed applied (incremented
	// after the 200: from then on the daemon must answer post-flip).
	initiated atomic.Int64
	acked     atomic.Int64

	mu   sync.Mutex
	errs []string
}

func newFlipRunner(client *http.Client, base, venue string, ph *Phase) *flipRunner {
	fr := &flipRunner{
		base: base, venue: venue, client: client, flips: ph.Flips,
		thresholds: make([]int, len(ph.Flips)),
		fired:      make([]atomic.Bool, len(ph.Flips)),
		done:       make([]chan struct{}, len(ph.Flips)),
	}
	for k, f := range ph.Flips {
		fr.thresholds[k] = int(f.After * float64(ph.Count))
		fr.done[k] = make(chan struct{})
	}
	return fr
}

// maybeFire launches every not-yet-fired flip whose threshold the
// dispatched query index has reached. Flips apply in order (flip k
// waits for flip k-1's ack) but never block the dispatching traffic.
func (fr *flipRunner) maybeFire(idx int) {
	for k := range fr.flips {
		if idx < fr.thresholds[k] || !fr.fired[k].CompareAndSwap(false, true) {
			continue
		}
		go fr.fire(k)
	}
}

func (fr *flipRunner) fire(k int) {
	defer close(fr.done[k])
	if k > 0 {
		<-fr.done[k-1]
	}
	body, err := json.Marshal(server.SchedulesRequest{Updates: fr.flips[k].Updates})
	if err != nil {
		fr.fail("flip %d: %v", k, err)
		return
	}
	fr.initiated.Add(1)
	req, err := http.NewRequest(http.MethodPut,
		fr.base+"/v1/venues/"+fr.venue+"/schedules", bytes.NewReader(body))
	if err != nil {
		fr.fail("flip %d: %v", k, err)
		return
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := fr.client.Do(req)
	if err != nil {
		fr.fail("flip %d: %v", k, err)
		return
	}
	rbody, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		fr.fail("flip %d: HTTP %d: %s", k, resp.StatusCode, truncate(string(rbody), 200))
		return
	}
	fr.acked.Add(1)
}

func (fr *flipRunner) fail(format string, args ...any) {
	fr.mu.Lock()
	fr.errs = append(fr.errs, fmt.Sprintf(format, args...))
	fr.mu.Unlock()
}

// wait blocks until every flip goroutine has finished (fired or not:
// an unfired flip's channel never closes, but thresholds are always
// < Count, so dispatching the full stream fires them all).
func (fr *flipRunner) wait() {
	for k := range fr.done {
		if fr.fired[k].Load() {
			<-fr.done[k]
		}
	}
}

// runPhase executes one phase's stream and aggregates its report.
// Returns the post-phase /statsz scrape so the caller can keep the
// final one.
func runPhase(client *http.Client, base, venue string, mv *model.Venue, ps *PhaseStream) (*PhaseReport, *server.StatsResponse, error) {
	ph := ps.Phase
	var oracle *phaseOracle
	if len(ph.Flips) > 0 {
		var err error
		oracle, err = buildOracle(mv, ph, ps.Templates)
		if err != nil {
			return nil, nil, err
		}
	}
	before, err := scrapeStats(client, base)
	if err != nil {
		return nil, nil, err
	}
	beforeCz := scrapeCachez(client, base, venue)

	var fr *flipRunner
	if len(ph.Flips) > 0 {
		fr = newFlipRunner(client, base, venue, ph)
	}
	results := make([]qresult, len(ps.Queries))
	phaseStart := time.Now()
	runOne := func(idx int) {
		if fr != nil {
			fr.maybeFire(idx)
		}
		results[idx] = sendQuery(client, base, venue, ps.Queries[idx], fr)
	}
	conc := ph.Concurrency
	if conc <= 0 {
		conc = 1
	}
	if ph.Waves {
		for off := 0; off < len(ps.Queries); off += conc {
			end := min(off+conc, len(ps.Queries))
			var wg sync.WaitGroup
			for i := off; i < end; i++ {
				wg.Add(1)
				go func(i int) {
					defer wg.Done()
					runOne(i)
				}(i)
			}
			wg.Wait()
		}
	} else {
		var next atomic.Int64
		var wg sync.WaitGroup
		for w := 0; w < conc; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					i := int(next.Add(1)) - 1
					if i >= len(ps.Queries) {
						return
					}
					runOne(i)
				}
			}()
		}
		wg.Wait()
	}
	if fr != nil {
		fr.wait()
	}
	phaseDur := time.Since(phaseStart)

	after, err := scrapeStats(client, base)
	if err != nil {
		return nil, nil, err
	}

	phr := aggregatePhase(ph, results, oracle, before, after, venue)
	phr.DurationSec = phaseDur.Seconds()
	phr.Load = scrapeLoad(client, base, venue)
	phr.HotPairs = hotPairDelta(beforeCz, scrapeCachez(client, base, venue), phr.StatsDelta.Queries)
	if fr != nil {
		fr.mu.Lock()
		for _, e := range fr.errs {
			phr.Errors++
			if len(phr.ErrorSamples) < errorSampleCap {
				phr.ErrorSamples = append(phr.ErrorSamples, e)
			}
		}
		fr.mu.Unlock()
	}
	return phr, after, nil
}

// sendQuery issues one route request and records its outcome.
func sendQuery(client *http.Client, base, venue string, q Query, fr *flipRunner) qresult {
	res := qresult{template: q.Template}
	if fr != nil {
		res.lo = int(fr.acked.Load())
	}
	body, err := json.Marshal(server.RouteRequest{
		From:   &server.PointDoc{X: q.From.X, Y: q.From.Y, Floor: q.From.Floor},
		To:     &server.PointDoc{X: q.To.X, Y: q.To.Y, Floor: q.To.Floor},
		At:     fmtTime(q.At),
		Method: q.Method,
		Speed:  q.Speed,
	})
	if err != nil {
		res.errText = err.Error()
		return res
	}
	t0 := time.Now()
	resp, err := client.Post(base+"/v1/venues/"+venue+"/route", "application/json", bytes.NewReader(body))
	if err != nil {
		res.latencyMs = float64(time.Since(t0)) / float64(time.Millisecond)
		res.errText = err.Error()
		if fr != nil {
			res.hi = int(fr.initiated.Load())
		}
		return res
	}
	rbody, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	resp.Body.Close()
	res.latencyMs = float64(time.Since(t0)) / float64(time.Millisecond)
	if fr != nil {
		res.hi = int(fr.initiated.Load())
	}
	res.status = resp.StatusCode
	if resp.StatusCode != http.StatusOK {
		res.errText = truncate(string(rbody), 200)
		return res
	}
	var rr server.RouteResponse
	if err := json.Unmarshal(rbody, &rr); err != nil {
		res.status = 0
		res.errText = "bad response body: " + err.Error()
		return res
	}
	res.found = rr.Found
	res.hit = rr.Hit
	res.coalesced = rr.Coalesced
	res.sharedRun = rr.SharedRun
	res.shared = rr.Shared
	if fr != nil && q.Template >= 0 {
		res.served = servedAnswer{found: rr.Found}
		if rr.Path != nil {
			res.served.length = rr.Path.LengthM
			res.served.arrive = rr.Path.ArriveSec
			res.served.doors = make([]string, len(rr.Path.Doors))
			for i, d := range rr.Path.Doors {
				res.served.doors[i] = d.Door
			}
		}
	}
	return res
}

// aggregatePhase folds per-query results and the /statsz movement into
// one PhaseReport.
func aggregatePhase(ph *Phase, results []qresult, oracle *phaseOracle, before, after *server.StatsResponse, venue string) *PhaseReport {
	phr := &PhaseReport{Name: ph.Name, Queries: len(results), Flips: len(ph.Flips)}
	lat := make([]float64, 0, len(results))
	for i := range results {
		r := &results[i]
		lat = append(lat, r.latencyMs)
		switch {
		case r.status == http.StatusOK && r.errText == "":
			if r.found {
				phr.Found++
			} else {
				phr.NoRoute++
			}
			switch r.hit {
			case "exact":
				phr.Provenance.Exact++
			case "window":
				phr.Provenance.Window++
			case "skeleton":
				phr.Provenance.Skeleton++
			default:
				phr.Provenance.Miss++
			}
			if r.coalesced {
				phr.Provenance.Coalesced++
			}
			if r.sharedRun {
				phr.Provenance.SharedRun++
			}
			if r.shared {
				phr.Provenance.Deduped++
			}
		case r.status == http.StatusGatewayTimeout:
			phr.Timeouts++
		default:
			phr.Errors++
			if len(phr.ErrorSamples) < errorSampleCap {
				phr.ErrorSamples = append(phr.ErrorSamples,
					fmt.Sprintf("query %d: HTTP %d: %s", i, r.status, r.errText))
			}
		}
	}
	if oracle != nil {
		for i := range results {
			r := &results[i]
			if r.status != http.StatusOK || r.errText != "" || r.template < 0 {
				continue
			}
			tmpl := r.template
			r.match = oracle.match(tmpl, r.lo, r.hi, r.served)
			switch r.match {
			case matchRelaxed:
				phr.TieRelaxed++
			case matchMixed:
				phr.MixedAnswers++
				if len(phr.MixedSamples) < errorSampleCap {
					phr.MixedSamples = append(phr.MixedSamples,
						fmt.Sprintf("query %d (template %d, states %d..%d): found=%v length=%.6f arrive=%.3f doors=%v",
							i, tmpl, r.lo, r.hi, r.served.found, r.served.length, r.served.arrive, r.served.doors))
				}
			}
		}
	}
	phr.LatencyMs = latencyDoc(lat)
	phr.StatsDelta = statsDelta(before, after, venue)
	if phr.StatsDelta.Queries > 0 {
		phr.SearchesPerQuery = float64(phr.StatsDelta.EngineSearches) / float64(phr.StatsDelta.Queries)
	}
	addObservability(phr, before, after, venue)
	addEffortDelta(phr, before, after, venue)
	return phr
}

// statsDelta computes the /statsz movement across a phase for the
// replayed venue, summed over its method pools.
func statsDelta(before, after *server.StatsResponse, venue string) StatsDeltaDoc {
	var d StatsDeltaDoc
	b, a := before.Venues[venue], after.Venues[venue]
	for _, m := range []string{"syn", "asyn", "static"} {
		bm, am := b.Methods[m], a.Methods[m]
		d.Queries += am.Queries - bm.Queries
		d.EngineSearches += am.EngineSearches - bm.EngineSearches
		d.ExactHits += am.CacheHits - bm.CacheHits
		d.WindowHits += am.WindowHits - bm.WindowHits
		d.SkeletonHits += am.SkeletonHits - bm.SkeletonHits
		d.Deduped += am.Deduped - bm.Deduped
		d.SharedRuns += am.SharedRuns - bm.SharedRuns
		d.SharedAnswers += am.SharedAnswers - bm.SharedAnswers
		d.Reasons = d.Reasons.Add(am.Reasons.Sub(bm.Reasons))
		bc, ac := b.Coalesce[m], a.Coalesce[m]
		d.CoalesceFlushes += ac.Flushes - bc.Flushes
		d.CoalescedAnswers += ac.Answers - bc.Answers
	}
	d.Epoch = a.Epoch - b.Epoch
	d.Timeouts = after.Server.Timeouts - before.Server.Timeouts
	d.ClientGone = after.Server.ClientGone - before.Server.ClientGone
	return d
}

// scrapeStats reads /statsz.
func scrapeStats(client *http.Client, base string) (*server.StatsResponse, error) {
	resp, err := client.Get(base + "/statsz")
	if err != nil {
		return nil, fmt.Errorf("replay: scrape /statsz: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("replay: scrape /statsz: HTTP %d", resp.StatusCode)
	}
	var st server.StatsResponse
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return nil, fmt.Errorf("replay: scrape /statsz: %w", err)
	}
	return &st, nil
}

// scrapeLoad reads the venue's /loadz block right after a phase. The
// scrape is best-effort: nil against daemons predating the endpoint
// (404) or on any transport/decode failure — the load view annotates
// the report, it must not fail a run.
func scrapeLoad(client *http.Client, base, venue string) map[string][]server.LoadWindowDoc {
	resp, err := client.Get(base + "/loadz")
	if err != nil {
		return nil
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil
	}
	var lz server.LoadzResponse
	if err := json.NewDecoder(resp.Body).Decode(&lz); err != nil {
		return nil
	}
	return lz.Venues[venue]
}

// scrapeCachez reads the venue's /cachez block (per-method cache
// introspection docs). Best-effort like scrapeLoad: nil against
// daemons predating the endpoint or on any transport/decode failure —
// hot-pair deltas annotate the report, they must not fail a run.
func scrapeCachez(client *http.Client, base, venue string) map[string]server.CacheMethodDoc {
	resp, err := client.Get(base + "/cachez")
	if err != nil {
		return nil
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil
	}
	var cz server.CachezResponse
	if err := json.NewDecoder(resp.Body).Decode(&cz); err != nil {
		return nil
	}
	return cz.Venues[venue]
}

// checkVenueServed verifies the daemon lists the scenario's venue.
func checkVenueServed(client *http.Client, base, venue string) error {
	resp, err := client.Get(base + "/v1/venues")
	if err != nil {
		return fmt.Errorf("replay: list venues: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("replay: list venues: HTTP %d", resp.StatusCode)
	}
	var vr server.VenuesResponse
	if err := json.NewDecoder(resp.Body).Decode(&vr); err != nil {
		return fmt.Errorf("replay: list venues: %w", err)
	}
	for _, v := range vr.Venues {
		if v.ID == venue {
			return nil
		}
	}
	return fmt.Errorf("replay: daemon at %s does not serve venue %q (have %d venues) — start it with -preset %s",
		base, venue, len(vr.Venues), venue)
}

// truncate bounds a sample string.
func truncate(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n] + "…"
}
