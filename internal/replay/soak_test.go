package replay

import (
	"net/http/httptest"
	"testing"

	"indoorpath/internal/server"
	"indoorpath/internal/service"
)

// newSoakServer boots an in-process daemon serving the hospital preset
// with the full serving stack on — window cache, skeleton-family
// store, shared-execution batch planner and request coalescing — the
// configuration the scenarios are written to exercise (and what the CI
// replay-smoke job boots as a real process).
func newSoakServer(t testing.TB) *httptest.Server {
	t.Helper()
	reg := server.NewRegistry(service.Options{WindowCache: true, SkeletonCache: true, SharedBatch: true})
	if _, err := reg.AddPresets("hospital"); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(server.New(reg, server.Options{Coalesce: true}))
	t.Cleanup(ts.Close)
	return ts
}

func runBuiltin(t *testing.T, name string, quick bool) *Report {
	t.Helper()
	sc, err := Builtin(name, quick)
	if err != nil {
		t.Fatal(err)
	}
	ts := newSoakServer(t)
	rep, err := Run(sc, Options{BaseURL: ts.URL, Quick: quick, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

// TestFlipStormSoak replays the flip-storm scenario — schedule updates
// racing waves of syn/asyn/static traffic — against an in-process
// server with coalescing, window cache and shared execution all
// enabled, and asserts the PR 2/5 atomicity invariants from the
// OUTSIDE: every answer byte-matches a sequential engine under some
// schedule state the daemon could legally have been in, never a mix of
// pre- and post-flip state. The short variant replays the quick
// stream; the full run replays the 10x day.
func TestFlipStormSoak(t *testing.T) {
	rep := runBuiltin(t, ScenarioFlipStorm, testing.Short())

	if len(rep.Phases) != 1 {
		t.Fatalf("phases = %d", len(rep.Phases))
	}
	ph := &rep.Phases[0]
	if ph.Errors != 0 {
		t.Fatalf("errors = %d, samples %v", ph.Errors, ph.ErrorSamples)
	}
	if ph.Timeouts != 0 {
		t.Fatalf("timeouts = %d", ph.Timeouts)
	}
	if ph.MixedAnswers != 0 {
		t.Fatalf("MIXED-SCHEDULE ANSWERS: %d\n%v", ph.MixedAnswers, ph.MixedSamples)
	}
	if ph.Flips != 3 || ph.StatsDelta.Epoch != 3 {
		t.Fatalf("flips = %d, epoch delta = %d, want 3/3", ph.Flips, ph.StatsDelta.Epoch)
	}
	// Every query is counted by exactly one method pool, flips add none.
	if want := int64(ph.Queries); ph.StatsDelta.Queries != want {
		t.Fatalf("statsz queries delta = %d, want %d", ph.StatsDelta.Queries, want)
	}
	// The hot set is 6 templates over (up to) 4 schedule states; with
	// exact caching on, engine searches stay around states * templates
	// regardless of how many queries replayed (window cache and
	// coalescing only push the number lower). 2x slack tolerates
	// concurrent same-template misses racing a cache fill.
	if maxSearches := int64(2 * 4 * 6); ph.StatsDelta.EngineSearches > maxSearches {
		t.Fatalf("engine searches = %d, want <= %d (~6 templates x 4 states)", ph.StatsDelta.EngineSearches, maxSearches)
	}
	if !rep.Pass {
		t.Fatalf("verdicts failed:\n%s", rep.Summary())
	}
	if rep.Process == nil || rep.Process.StartTime == "" {
		t.Fatalf("report has no process block: %+v", rep.Process)
	}
}

// TestSteadyReplay smoke-runs the steady scenario end to end and spot
// checks the report plumbing (latency populated, provenance counted,
// fingerprint recorded, verdicts evaluated).
func TestSteadyReplay(t *testing.T) {
	rep := runBuiltin(t, ScenarioSteady, true)
	if !rep.Pass {
		t.Fatalf("verdicts failed:\n%s", rep.Summary())
	}
	if rep.Fingerprint != goldenFingerprints[ScenarioSteady] {
		t.Fatalf("report fingerprint %s does not match the golden stream", rep.Fingerprint)
	}
	ph := &rep.Phases[0]
	if ph.LatencyMs.P50 <= 0 || ph.LatencyMs.Max < ph.LatencyMs.P99 || ph.LatencyMs.P99 < ph.LatencyMs.P50 {
		t.Fatalf("latency doc not ordered: %+v", ph.LatencyMs)
	}
	if ph.Found == 0 {
		t.Fatal("no found answers")
	}
	// 120 queries over 16 templates: the exact cache must absorb most.
	if got := ph.Provenance.Exact + ph.Provenance.Window; got == 0 {
		t.Fatalf("no cache hits across a templated phase: %+v", ph.Provenance)
	}
	if len(rep.Verdicts) != 3 {
		t.Fatalf("verdicts = %+v", rep.Verdicts)
	}

	// The stage breakdown and the server-side latency view must be
	// populated from the daemon's histograms, and the client-vs-server
	// quantile cross-check must not warn against an in-process server
	// (both clocks are the same machine).
	stages := map[string]StageDeltaDoc{}
	for _, sd := range ph.Stages {
		stages[sd.Stage] = sd
	}
	for _, want := range []string{"decode", "probe", "engine", "render"} {
		if stages[want].Count == 0 {
			t.Errorf("stage breakdown missing %q: %+v", want, ph.Stages)
		}
	}
	if ph.HistLatency == nil {
		t.Fatal("no server-side latency quantiles in the phase report")
	}
	if got, want := ph.HistLatency.Count, int64(ph.Queries); got != want {
		t.Errorf("server-side request histogram delta count = %d, want %d", got, want)
	}
	if ph.HistLatency.P50Ms <= 0 || ph.HistLatency.P99Ms < ph.HistLatency.P50Ms {
		t.Errorf("server-side quantiles not ordered: %+v", ph.HistLatency)
	}
	if len(ph.Warnings) != 0 {
		t.Errorf("latency cross-check warned in-process: %v", ph.Warnings)
	}
	if rep.StageTable() == "" {
		t.Error("StageTable empty despite stage breakdowns")
	}

	// The cache-introspection deltas: the phase runs engine searches,
	// so the effort block must be populated and self-consistent, and
	// the /cachez hot-pair delta must cover some of the phase's
	// traffic with shares that cannot exceed the whole.
	if ph.EngineEffort == nil {
		t.Fatal("no engine-effort delta in the phase report")
	}
	if ph.EngineEffort.Searches != ph.StatsDelta.EngineSearches {
		t.Errorf("effort searches = %d, stats delta = %d", ph.EngineEffort.Searches, ph.StatsDelta.EngineSearches)
	}
	if ph.EngineEffort.MeanPops <= 0 || ph.EngineEffort.P95Pops < ph.EngineEffort.MeanPops {
		t.Errorf("effort pops not ordered: %+v", ph.EngineEffort)
	}
	if len(ph.HotPairs) == 0 {
		t.Fatal("no hot-pair delta in the phase report")
	}
	var share float64
	for i, hp := range ph.HotPairs {
		if hp.Queries <= 0 || hp.Src == "" || hp.Tgt == "" {
			t.Errorf("hot pair %d malformed: %+v", i, hp)
		}
		if i > 0 && hp.Queries > ph.HotPairs[i-1].Queries {
			t.Errorf("hot pairs not sorted: %+v", ph.HotPairs)
		}
		share += hp.Share
	}
	if share <= 0 || share > 1.0001 {
		t.Errorf("hot-pair shares sum to %v, want (0, 1]", share)
	}
	if rep.HotPairsTable() == "" || rep.EffortTable() == "" {
		t.Error("hot-pair / effort tables empty despite populated blocks")
	}
}

// TestFlashCrowdSharing pins the headline sharing verdict: a flash
// crowd (200 identical-ish queries over 8 templates in waves of 16)
// must cost well under 0.25 engine searches per query with the serving
// stack on.
func TestFlashCrowdSharing(t *testing.T) {
	rep := runBuiltin(t, ScenarioFlashCrowd, true)
	if !rep.Pass {
		t.Fatalf("verdicts failed:\n%s", rep.Summary())
	}
	ph := &rep.Phases[0]
	if ph.SearchesPerQuery >= 0.25 {
		t.Fatalf("searches/query = %v, want < 0.25", ph.SearchesPerQuery)
	}
}

// TestNeighborhoodSoak replays the jittered-endpoint scenario — hot
// partition pairs, but no two queries sharing an exact point — against
// the full serving stack and pins the point-free headline: the crowd
// is answered by skeleton composition ("hit":"skeleton" on the wire,
// matching the server-side SkeletonHits movement) at no more than half
// an engine search per query, a load today's point-keyed caches score
// ~1.0 on.
func TestNeighborhoodSoak(t *testing.T) {
	rep := runBuiltin(t, ScenarioNeighborhood, true)
	if !rep.Pass {
		t.Fatalf("verdicts failed:\n%s", rep.Summary())
	}
	ph := rep.phase("neighborhood")
	if ph == nil {
		t.Fatalf("no neighborhood phase in %+v", rep.Phases)
	}
	if ph.Errors != 0 || ph.Timeouts != 0 {
		t.Fatalf("errors = %d timeouts = %d, samples %v", ph.Errors, ph.Timeouts, ph.ErrorSamples)
	}
	// The wire provenance and the /statsz delta must agree: every
	// answer flagged "skeleton" moved the pool counter.
	if ph.Provenance.Skeleton == 0 {
		t.Fatalf("no skeleton answers across the jittered phase: %+v", ph.Provenance)
	}
	if int64(ph.Provenance.Skeleton) != ph.StatsDelta.SkeletonHits {
		t.Fatalf("wire skeleton answers %d != statsz delta %d",
			ph.Provenance.Skeleton, ph.StatsDelta.SkeletonHits)
	}
	// Exact points never repeat (Templates is 0), so the point-keyed
	// caches cannot be what absorbed the load.
	if ph.SearchesPerQuery > 0.5 {
		t.Fatalf("searches/query = %v, want <= 0.5", ph.SearchesPerQuery)
	}
	// The phase's hit classes partition its server-side queries.
	d := &ph.StatsDelta
	if d.ExactHits+d.WindowHits+d.SkeletonHits+d.Deduped > d.Queries {
		t.Fatalf("phase stats delta does not partition: %+v", d)
	}
}

// TestRunRejectsMissingVenue: a daemon that does not serve the
// scenario's venue must fail fast, before any load is generated.
func TestRunRejectsMissingVenue(t *testing.T) {
	reg := server.NewRegistry(service.Options{})
	if _, err := reg.AddPresets("office"); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(server.New(reg, server.Options{}))
	t.Cleanup(ts.Close)
	sc, err := Builtin(ScenarioSteady, true)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Run(sc, Options{BaseURL: ts.URL}); err == nil {
		t.Fatal("Run accepted a daemon without the scenario's venue")
	}
}
