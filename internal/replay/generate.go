package replay

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"math"
	"math/rand"
	"strings"

	"indoorpath/internal/geom"
	"indoorpath/internal/model"
	"indoorpath/internal/temporal"
)

// Query is one generated replay query: everything the driver needs to
// form the wire request, plus the template index it was sampled from
// (-1 for fresh random instances).
type Query struct {
	Method   string             `json:"method"`
	From     geom.Point         `json:"from"`
	To       geom.Point         `json:"to"`
	At       temporal.TimeOfDay `json:"at"`
	Speed    float64            `json:"speed,omitempty"`
	Template int                `json:"template"`
}

// PhaseStream is one phase's generated query stream.
type PhaseStream struct {
	Phase *Phase `json:"-"`
	// Templates holds the phase's hot set (empty when Templates == 0);
	// Queries sample from it by index.
	Templates []Query `json:"templates,omitempty"`
	Queries   []Query `json:"queries"`
}

// Stream is a scenario's fully generated query stream: a pure function
// of (scenario, seed), independent of the daemon, the clock and the
// execution interleaving — the apples-to-apples half of a replay run.
type Stream struct {
	Scenario *Scenario     `json:"-"`
	Phases   []PhaseStream `json:"phases"`
}

// Generate produces the scenario's deterministic query stream over the
// venue model (the locally rebuilt preset). One seeded generator feeds
// all phases in order, so any change to an earlier phase changes the
// fingerprint — which is the point: the fingerprint identifies the
// whole replayed day.
func (sc *Scenario) Generate(v *model.Venue) (*Stream, error) {
	if err := sc.Validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(sc.Seed))
	st := &Stream{Scenario: sc, Phases: make([]PhaseStream, len(sc.Phases))}
	for i := range sc.Phases {
		ph := &sc.Phases[i]
		ps, err := generatePhase(rng, v, ph)
		if err != nil {
			return nil, fmt.Errorf("replay: scenario %q: %w", sc.Name, err)
		}
		st.Phases[i] = ps
	}
	return st, nil
}

// generatePhase samples one phase's stream.
func generatePhase(rng *rand.Rand, v *model.Venue, ph *Phase) (PhaseStream, error) {
	type odPair struct {
		src, tgt model.PartitionID
		cum      float64
	}
	pairs := make([]odPair, len(ph.OD))
	total := 0.0
	for i, od := range ph.OD {
		src, ok := v.PartitionByName(od.Src)
		if !ok {
			return PhaseStream{}, fmt.Errorf("phase %q: unknown partition %q", ph.Name, od.Src)
		}
		tgt, ok := v.PartitionByName(od.Tgt)
		if !ok {
			return PhaseStream{}, fmt.Errorf("phase %q: unknown partition %q", ph.Name, od.Tgt)
		}
		total += od.Weight
		pairs[i] = odPair{src: src, tgt: tgt, cum: total}
	}
	mix := ph.Mix.normalised()
	mixTotal := mix.Syn + mix.Asyn + mix.Static
	sampleMethod := func() string {
		r := rng.Float64() * mixTotal
		switch {
		case r < mix.Syn:
			return "syn"
		case r < mix.Syn+mix.Asyn:
			return "asyn"
		default:
			return "static"
		}
	}
	sampleInstance := func(template int) Query {
		r := rng.Float64() * total
		pi := 0
		for pi < len(pairs)-1 && r >= pairs[pi].cum {
			pi++
		}
		from := interiorPoint(rng, v.Partition(pairs[pi].src).Rect)
		to := interiorPoint(rng, v.Partition(pairs[pi].tgt).Rect)
		// Whole seconds: the wire carries "H:MM:SS", and identical
		// departures are what the coalescer and caches group by.
		span := int(ph.WindowClose - ph.WindowOpen)
		at := ph.WindowOpen + temporal.TimeOfDay(rng.Intn(span))
		return Query{
			Method:   sampleMethod(),
			From:     from,
			To:       to,
			At:       at,
			Speed:    ph.Speed,
			Template: template,
		}
	}

	ps := PhaseStream{Phase: ph, Queries: make([]Query, 0, ph.Count)}
	if ph.Templates > 0 {
		ps.Templates = make([]Query, ph.Templates)
		for t := range ps.Templates {
			ps.Templates[t] = sampleInstance(t)
		}
		for range ph.Count {
			q := ps.Templates[rng.Intn(ph.Templates)]
			ps.Queries = append(ps.Queries, q)
		}
	} else {
		for range ph.Count {
			ps.Queries = append(ps.Queries, sampleInstance(-1))
		}
	}
	return ps, nil
}

// interiorPoint samples a point strictly inside the rectangle (10%
// margin, like the paper-harness query generator in internal/synth),
// so boundary point-location ambiguity never enters the stream.
func interiorPoint(rng *rand.Rand, r geom.Rect) geom.Point {
	margin := math.Min(r.Width(), r.Height()) * 0.1
	return geom.Pt(
		r.MinX+margin+rng.Float64()*(r.Width()-2*margin),
		r.MinY+margin+rng.Float64()*(r.Height()-2*margin),
		r.Floor,
	)
}

// Fingerprint returns a stable hex digest of the full query stream —
// methods, endpoints, departures, template structure — used by the
// determinism golden test and recorded in the report so two
// BENCH_replay.json artifacts can prove they replayed the same day.
func (st *Stream) Fingerprint() string {
	h := sha256.New()
	wq := func(q Query) {
		// %.17g round-trips float64 exactly; fixed field order.
		fmt.Fprintf(h, "%s|%.17g,%.17g,%d|%.17g,%.17g,%d|%.17g|%.17g|%d\n",
			q.Method, q.From.X, q.From.Y, q.From.Floor,
			q.To.X, q.To.Y, q.To.Floor, float64(q.At), q.Speed, q.Template)
	}
	for i := range st.Phases {
		fmt.Fprintf(h, "phase %s\n", st.Phases[i].Phase.Name)
		for _, q := range st.Phases[i].Templates {
			wq(q)
		}
		for _, q := range st.Phases[i].Queries {
			wq(q)
		}
	}
	return hex.EncodeToString(h.Sum(nil))
}

// fmtTime renders a whole-second TimeOfDay as the wire's "H:MM:SS".
func fmtTime(t temporal.TimeOfDay) string {
	total := int(t)
	return fmt.Sprintf("%d:%02d:%02d", total/3600, (total/60)%60, total%60)
}

// TotalQueries sums the stream's per-phase counts.
func (st *Stream) TotalQueries() int {
	n := 0
	for i := range st.Phases {
		n += len(st.Phases[i].Queries)
	}
	return n
}

// String summarises the stream.
func (st *Stream) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "stream %s (%d phases, %d queries)", st.Scenario.Name, len(st.Phases), st.TotalQueries())
	return sb.String()
}
