package indoorpath_test

import (
	"bytes"
	"errors"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	indoorpath "indoorpath"
)

// buildDemoVenue exercises the public builder API end to end.
func buildDemoVenue(t testing.TB) *indoorpath.Venue {
	t.Helper()
	b := indoorpath.NewBuilder("facade-demo")
	hall := b.AddPartition("hall", indoorpath.HallwayPartition, indoorpath.NewRect(0, 0, 20, 10, 0))
	shop := b.AddPartition("shop", indoorpath.PublicPartition, indoorpath.NewRect(20, 0, 30, 10, 0))
	back := b.AddPartition("back", indoorpath.PrivatePartition, indoorpath.NewRect(0, 10, 20, 20, 0))
	door := b.AddDoor("door", indoorpath.PublicDoor, indoorpath.Pt(20, 5, 0),
		indoorpath.MustSchedule("[8:00, 16:00)"))
	priv := b.AddDoor("priv", indoorpath.PrivateDoor, indoorpath.Pt(10, 10, 0), indoorpath.AlwaysOpen())
	ent := b.AddDoor("ent", indoorpath.EntranceDoor, indoorpath.Pt(0, 5, 0), nil)
	b.ConnectBi(door, hall, shop)
	b.ConnectBi(priv, hall, back)
	b.ConnectBi(ent, hall, b.Outdoors())
	v, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return v
}

func TestFacadeRoundTrip(t *testing.T) {
	v := buildDemoVenue(t)
	g, err := indoorpath.NewGraph(v)
	if err != nil {
		t.Fatal(err)
	}
	q := indoorpath.Query{
		Source: indoorpath.Pt(2, 5, 0),
		Target: indoorpath.Pt(25, 5, 0),
		At:     indoorpath.MustParseTime("12:00"),
	}
	for _, m := range []indoorpath.Method{indoorpath.MethodSyn, indoorpath.MethodAsyn} {
		e := indoorpath.NewEngine(g, indoorpath.Options{Method: m})
		p, st, err := e.Route(q)
		if err != nil {
			t.Fatalf("%v: %v", m, err)
		}
		if math.Abs(p.Length-23) > 1e-9 {
			t.Errorf("%v: length = %v, want 23", m, p.Length)
		}
		if !st.Found {
			t.Errorf("%v: stats not found", m)
		}
		if err := p.Validate(g, q); err != nil {
			t.Errorf("%v: %v", m, err)
		}
	}
	// Closed at night.
	q.At = indoorpath.MustParseTime("20:00")
	if _, err := indoorpath.Route(v, q); !errors.Is(err, indoorpath.ErrNoRoute) {
		t.Errorf("night route err = %v, want ErrNoRoute", err)
	}
}

func TestFacadeServicePool(t *testing.T) {
	v := buildDemoVenue(t)
	g, err := indoorpath.NewGraph(v)
	if err != nil {
		t.Fatal(err)
	}
	pool := indoorpath.NewPool(g, indoorpath.PoolOptions{
		Engine:  indoorpath.Options{Method: indoorpath.MethodAsyn},
		Workers: 4,
	})
	q := indoorpath.Query{
		Source: indoorpath.Pt(2, 5, 0),
		Target: indoorpath.Pt(25, 5, 0),
		At:     indoorpath.MustParseTime("12:00"),
	}
	p, _, err := pool.Route(q)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(p.Length-23) > 1e-9 {
		t.Errorf("pool length = %v, want 23", p.Length)
	}
	night := q
	night.At = indoorpath.MustParseTime("20:00")
	batch := []indoorpath.Query{q, night, q} // duplicate triggers dedup
	rs := pool.RouteBatch(batch)
	if len(rs) != 3 {
		t.Fatalf("%d results for 3 queries", len(rs))
	}
	if rs[0].Err != nil || math.Abs(rs[0].Path.Length-23) > 1e-9 {
		t.Errorf("batch[0]: %+v", rs[0])
	}
	if !errors.Is(rs[1].Err, indoorpath.ErrNoRoute) {
		t.Errorf("batch[1] err = %v, want ErrNoRoute", rs[1].Err)
	}
	if rs[2].Err != nil || math.Abs(rs[2].Path.Length-23) > 1e-9 {
		t.Errorf("batch[2]: %+v", rs[2])
	}
	st := pool.Stats()
	if st.Queries == 0 || st.Batches != 1 {
		t.Errorf("stats = %+v", st)
	}
}

func TestFacadeSerialisation(t *testing.T) {
	v := buildDemoVenue(t)
	var buf bytes.Buffer
	if err := indoorpath.SaveVenue(&buf, v); err != nil {
		t.Fatal(err)
	}
	v2, err := indoorpath.LoadVenue(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if v2.Stats() != v.Stats() {
		t.Error("stats changed across save/load")
	}
}

func TestFacadePresetsAndExample(t *testing.T) {
	ex := indoorpath.PaperFigure1()
	p, err := indoorpath.Route(ex.Venue, indoorpath.Query{
		Source: ex.P3, Target: ex.P4, At: indoorpath.MustParseTime("9:00"),
	})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(p.Length-12) > 1e-9 {
		t.Errorf("Example 1 length = %v, want 12", p.Length)
	}
	if indoorpath.Hospital().PartitionCount() == 0 {
		t.Error("hospital empty")
	}
	if indoorpath.Office().DoorCount() == 0 {
		t.Error("office empty")
	}
}

func TestFacadeMallAndQueries(t *testing.T) {
	m, err := indoorpath.GenerateMall(indoorpath.MallConfig{Floors: 1, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	g, err := indoorpath.NewGraph(m.Venue)
	if err != nil {
		t.Fatal(err)
	}
	qs, err := indoorpath.GenerateQueries(m, g, indoorpath.QueryConfig{S2T: 700, Count: 2, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	e := indoorpath.NewEngine(g, indoorpath.Options{Method: indoorpath.MethodAsyn})
	for _, qi := range qs {
		p, _, err := e.Route(indoorpath.Query{Source: qi.Source, Target: qi.Target, At: indoorpath.Clock(12, 0, 0)})
		if err != nil {
			t.Fatalf("route: %v", err)
		}
		// At noon every door is open, so the valid shortest path equals
		// the static distance.
		if math.Abs(p.Length-qi.StaticDist) > 1e-6 {
			t.Errorf("noon path %v != static %v", p.Length, qi.StaticDist)
		}
	}
}

func TestFacadeDecompose(t *testing.T) {
	pg := indoorpath.Polygon{
		Verts: []indoorpath.Point{
			indoorpath.Pt(0, 0, 0), indoorpath.Pt(10, 0, 0), indoorpath.Pt(10, 5, 0),
			indoorpath.Pt(5, 5, 0), indoorpath.Pt(5, 10, 0), indoorpath.Pt(0, 10, 0),
		},
		Floor: 0,
	}
	d, err := indoorpath.Decompose(pg)
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Cells) != 2 || len(d.Doors) != 1 {
		t.Errorf("decomposition: %d cells, %d doors", len(d.Cells), len(d.Doors))
	}
}

func TestFacadeBenchHarness(t *testing.T) {
	fd, err := indoorpath.RunFig5(indoorpath.BenchConfig{Quick: true, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	table := indoorpath.RenderFigureTable(fd)
	csv := indoorpath.RenderFigureCSV(fd)
	if len(table) == 0 || len(csv) == 0 {
		t.Error("empty renderings")
	}
}

func TestFacadeWaitingRouter(t *testing.T) {
	v := buildDemoVenue(t)
	g, err := indoorpath.NewGraph(v)
	if err != nil {
		t.Fatal(err)
	}
	w := indoorpath.NewWaitingRouter(g)
	p, err := w.Route(indoorpath.Query{
		Source: indoorpath.Pt(2, 5, 0),
		Target: indoorpath.Pt(25, 5, 0),
		At:     indoorpath.MustParseTime("7:00"),
	})
	if err != nil {
		t.Fatal(err)
	}
	if p.TotalWait <= 0 {
		t.Error("expected a wait before the 8:00 opening")
	}
	if p.Arrivals[0] != indoorpath.MustParseTime("8:00") {
		t.Errorf("crossing at %v", p.Arrivals[0])
	}
	// Static baseline ignores the closed door.
	s := indoorpath.NewStaticRouter(g)
	sp, _, err := s.Route(indoorpath.Query{
		Source: indoorpath.Pt(2, 5, 0),
		Target: indoorpath.Pt(25, 5, 0),
		At:     indoorpath.MustParseTime("7:00"),
	})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(sp.Length-23) > 1e-9 {
		t.Errorf("static length = %v", sp.Length)
	}
}

// TestFacadeServer exercises the HTTP serving surface end to end
// through the public API: registry, server, route, schedule update.
func TestFacadeServer(t *testing.T) {
	reg := indoorpath.NewVenueRegistry(indoorpath.PoolOptions{})
	if err := reg.Add("demo", buildDemoVenue(t)); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(indoorpath.NewServer(reg, indoorpath.ServerOptions{}))
	defer ts.Close()

	send := func(method, path, body string) (int, string) {
		t.Helper()
		req, err := http.NewRequest(method, ts.URL+path, strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		raw, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, string(raw)
	}

	routeBody := `{"from":{"x":2,"y":5,"floor":0},"to":{"x":25,"y":5,"floor":0},"at":"12:00"}`
	status, raw := send(http.MethodPost, "/v1/venues/demo/route", routeBody)
	if status != http.StatusOK || !strings.Contains(raw, `"found":true`) {
		t.Fatalf("route: %d %s", status, raw)
	}
	// Close the shop door; the same query must now answer no-route.
	status, raw = send(http.MethodPut, "/v1/venues/demo/schedules", `{"updates":{"door":[]}}`)
	if status != http.StatusOK || !strings.Contains(raw, `"epoch":1`) {
		t.Fatalf("schedules: %d %s", status, raw)
	}
	status, raw = send(http.MethodPost, "/v1/venues/demo/route", routeBody)
	if status != http.StatusOK || !strings.Contains(raw, `"found":false`) {
		t.Fatalf("route after close: %d %s", status, raw)
	}
}
