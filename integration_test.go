package indoorpath_test

import (
	"bytes"
	"errors"
	"math"
	"testing"

	indoorpath "indoorpath"
)

// TestMallIntegration drives the full pipeline at venue scale through
// the public API: generate a 2-floor paper mall, build the IT-Graph,
// generate δs2t queries, and answer them across the day with every
// method, cross-checking agreement, validity and monotone behaviours.
func TestMallIntegration(t *testing.T) {
	if testing.Short() {
		t.Skip("venue-scale integration test")
	}
	m, err := indoorpath.GenerateMall(indoorpath.MallConfig{Floors: 2, Seed: 2024})
	if err != nil {
		t.Fatal(err)
	}
	g, err := indoorpath.NewGraph(m.Venue)
	if err != nil {
		t.Fatal(err)
	}
	qis, err := indoorpath.GenerateQueries(m, g, indoorpath.QueryConfig{S2T: 1200, Count: 4, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	syn := indoorpath.NewEngine(g, indoorpath.Options{Method: indoorpath.MethodSyn})
	asy := indoorpath.NewEngine(g, indoorpath.Options{Method: indoorpath.MethodAsyn})

	for _, hour := range []int{3, 7, 9, 12, 17, 21, 23} {
		at := indoorpath.Clock(hour, 0, 0)
		for i, qi := range qis {
			q := indoorpath.Query{Source: qi.Source, Target: qi.Target, At: at}
			ps, _, errS := syn.Route(q)
			pa, _, errA := asy.Route(q)
			if (errS == nil) != (errA == nil) {
				t.Fatalf("t=%d q%d: methods disagree: %v vs %v", hour, i, errS, errA)
			}
			if errS != nil {
				if !errors.Is(errS, indoorpath.ErrNoRoute) {
					t.Fatalf("t=%d q%d: %v", hour, i, errS)
				}
				continue
			}
			if math.Abs(ps.Length-pa.Length) > 1e-9 {
				t.Fatalf("t=%d q%d: lengths differ: %v vs %v", hour, i, ps.Length, pa.Length)
			}
			if err := ps.Validate(g, q); err != nil {
				t.Fatalf("t=%d q%d: %v", hour, i, err)
			}
			// Valid shortest path can never beat the static shortest path.
			if ps.Length < qi.StaticDist-1e-6 {
				t.Fatalf("t=%d q%d: valid %v beats static %v", hour, i, ps.Length, qi.StaticDist)
			}
			// At noon everything is open: they must coincide.
			if hour == 12 && math.Abs(ps.Length-qi.StaticDist) > 1e-6 {
				t.Fatalf("q%d: noon %v != static %v", i, ps.Length, qi.StaticDist)
			}
			// Validity window contains the departure and replays.
			w, err := indoorpath.ValidityWindow(g, ps, q)
			if err != nil {
				t.Fatalf("t=%d q%d: window: %v", hour, i, err)
			}
			if !w.Contains(at) {
				t.Fatalf("t=%d q%d: window %v misses departure", hour, i, w)
			}
		}
	}

	// Service layer at venue scale: nearest open shops shrink at night.
	src := qis[0].Source
	day, err := indoorpath.NearestPartitions(g, src, indoorpath.Clock(12, 0, 0), 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	night, err := indoorpath.NearestPartitions(g, src, indoorpath.Clock(3, 0, 0), 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(night) >= len(day) {
		t.Errorf("night reachable shops (%d) should be fewer than day (%d)", len(night), len(day))
	}
	if len(night) != 0 {
		t.Errorf("at 3:00 every shop door is closed, got %d reachable", len(night))
	}

	// Day profile for the first pair: reachable around noon, not at 3:00.
	prof, err := indoorpath.DayProfile(asy, qis[0].Source, qis[0].Target)
	if err != nil {
		t.Fatal(err)
	}
	var sawReachable bool
	for _, e := range prof {
		if e.Reachable {
			sawReachable = true
		}
	}
	if !sawReachable {
		t.Error("profile never reachable")
	}

	// Lockdown what-if: close every entrance schedule at 12:00 via
	// WithSchedules and confirm graph rebuild answers differ for some
	// query (shop doors shut → same-floor hallway queries may survive).
	updates := map[indoorpath.DoorID]indoorpath.Schedule{}
	for _, d := range m.Venue.Doors() {
		if d.Kind == indoorpath.PublicDoor {
			updates[d.ID] = indoorpath.Schedule{} // never open
		}
	}
	locked, err := m.Venue.WithSchedules(updates)
	if err != nil {
		t.Fatal(err)
	}
	g2, err := indoorpath.NewGraph(locked)
	if err != nil {
		t.Fatal(err)
	}
	e2 := indoorpath.NewEngine(g2, indoorpath.Options{})
	blockedAny := false
	for _, qi := range qis {
		_, _, err := e2.Route(indoorpath.Query{Source: qi.Source, Target: qi.Target, At: indoorpath.Clock(12, 0, 0)})
		if errors.Is(err, indoorpath.ErrNoRoute) {
			blockedAny = true
		}
	}
	_ = blockedAny // hallway-to-hallway pairs may legitimately survive
}

// TestSerialisationAtScale round-trips the 1-floor mall through JSON
// and verifies queries agree before and after.
func TestSerialisationAtScale(t *testing.T) {
	m, err := indoorpath.GenerateMall(indoorpath.MallConfig{Floors: 1, Seed: 31})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := indoorpath.SaveVenue(&buf, m.Venue); err != nil {
		t.Fatal(err)
	}
	v2, err := indoorpath.LoadVenue(&buf)
	if err != nil {
		t.Fatal(err)
	}
	g1, err := indoorpath.NewGraph(m.Venue)
	if err != nil {
		t.Fatal(err)
	}
	g2, err := indoorpath.NewGraph(v2)
	if err != nil {
		t.Fatal(err)
	}
	qis, err := indoorpath.GenerateQueries(m, g1, indoorpath.QueryConfig{S2T: 700, Count: 3, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	e1 := indoorpath.NewEngine(g1, indoorpath.Options{})
	e2 := indoorpath.NewEngine(g2, indoorpath.Options{})
	for _, hour := range []int{8, 12, 21} {
		for i, qi := range qis {
			q := indoorpath.Query{Source: qi.Source, Target: qi.Target, At: indoorpath.Clock(hour, 0, 0)}
			p1, _, err1 := e1.RouteOrNil(q)
			p2, _, err2 := e2.RouteOrNil(q)
			if err1 != nil || err2 != nil {
				t.Fatal(err1, err2)
			}
			if (p1 == nil) != (p2 == nil) {
				t.Fatalf("t=%d q%d: round-trip changed reachability", hour, i)
			}
			if p1 != nil && math.Abs(p1.Length-p2.Length) > 1e-9 {
				t.Fatalf("t=%d q%d: %v vs %v", hour, i, p1.Length, p2.Length)
			}
		}
	}
}
