// Package indoorpath is a Go implementation of indoor shortest-path
// queries for venues with temporal variations, reproducing:
//
//	Tiantian Liu, Zijin Feng, Huan Li, Hua Lu, Muhammad Aamir Cheema,
//	Hong Cheng, Jianliang Xu. "Shortest Path Queries for Indoor Venues
//	with Temporal Variations." ICDE 2020, pp. 2014–2017.
//
// Indoor entities such as doors open and close over the day; an
// ITSPQ(ps, pt, t) query returns the valid shortest indoor path from ps
// to pt departing at time t, such that every door on the path is open
// when the walker reaches it (no waiting) and no private partition is
// traversed except the ones containing the endpoints.
//
// The library provides:
//
//   - an indoor space model (partitions, directional doors, active time
//     intervals) with a builder API and JSON serialisation;
//   - the IT-Graph composite index with per-checkpoint topology
//     snapshots;
//   - the ITSPQ engine with the paper's synchronous (ITG/S) and
//     asynchronous (ITG/A) temporal checks, a temporal-unaware static
//     baseline, and an earliest-arrival router with waiting tolerance;
//   - a concurrent query-serving layer (NewPool): warm engines in a
//     sync.Pool over one shared graph, batch fan-out with
//     identical-query deduplication, per-(source partition, target
//     partition, checkpoint slot) exact result caching, an opt-in
//     validity-window temporal result cache for cross-time cache hits,
//     and an opt-in point-free door-to-door skeleton store that
//     composes answers for previously-unseen endpoint points
//     (internal/tcache);
//   - a shared-execution batch planner (PoolOptions.SharedBatch,
//     internal/batchplan): batches are partitioned into shared-endpoint
//     groups and each group is answered by one multi-target engine run
//     (Engine.RouteMany / RouteManyTo) instead of one search per query;
//   - an HTTP/JSON query daemon (NewServer + cmd/itspqd): a multi-venue
//     registry of serving pools behind route/batch/profile endpoints,
//     with live door-schedule updates and hot venue reload over the
//     wire;
//   - a service-query layer: single-source valid distances, k-nearest
//     open partitions, day profiles, path validity windows and what-if
//     schedule re-planning;
//   - synthetic venue/ATI/query generators matching the paper's
//     evaluation setup, the hand-encoded running example of the paper's
//     Figure 1, and hospital/office presets;
//   - an experiment harness regenerating every figure of the paper's
//     evaluation.
//
// # Quick start
//
//	b := indoorpath.NewBuilder("demo")
//	hall := b.AddPartition("hall", indoorpath.HallwayPartition, indoorpath.NewRect(0, 0, 20, 10, 0))
//	shop := b.AddPartition("shop", indoorpath.PublicPartition, indoorpath.NewRect(20, 0, 30, 10, 0))
//	door := b.AddDoor("door", indoorpath.PublicDoor, indoorpath.Pt(20, 5, 0),
//		indoorpath.MustSchedule("[8:00, 16:00)"))
//	b.ConnectBi(door, hall, shop)
//	venue := b.MustBuild()
//
//	g, _ := indoorpath.NewGraph(venue)
//	engine := indoorpath.NewEngine(g, indoorpath.Options{Method: indoorpath.MethodAsyn})
//	path, _, err := engine.Route(indoorpath.Query{
//		Source: indoorpath.Pt(2, 5, 0),
//		Target: indoorpath.Pt(25, 5, 0),
//		At:     indoorpath.MustParseTime("12:00"),
//	})
//	if err == nil {
//		fmt.Println(path.Format(venue), path.Length)
//	}
//
// # Concurrent serving
//
// A single Engine keeps reusable search state and is confined to one
// goroutine; the Graph underneath it is immutable and safe for any
// number of concurrent readers (snapshots materialise on first use
// behind a mutex, with lock-free steady-state lookups). NewPool wraps
// that split into a serving layer:
//
//	pool := indoorpath.NewPool(g, indoorpath.PoolOptions{
//		Engine:  indoorpath.Options{Method: indoorpath.MethodAsyn},
//		Workers: 8,
//	})
//	path, _, err := pool.Route(q)      // safe from any goroutine
//	results := pool.RouteBatch(batch)  // fan-out + dedup + caching
//
// Pool.Route answers exactly as Engine.Route would; cached results are
// shared pointers and must be treated as immutable. Live schedule
// updates go through Pool.UpdateSchedules (or Pool.SetGraph), which
// atomically swap the graph and flush the cache without draining the
// server.
//
// # Validity-window caching
//
// The exact cache hits only on identical queries, so a time-sweep or
// rush-hour workload — one OD pair asked at many nearby departures —
// gets near-zero reuse. PoolOptions.WindowCache enables the temporal
// result cache (internal/tcache): each found no-waiting answer is
// stored with the departure interval over which a fresh search
// provably returns the same doors, partitions and length
// (AnswerWindow: the path's ValidityWindow intersected with the
// constant-topology clamp that keeps the departure and the whole walk
// inside one checkpoint slot), and any later departure inside a stored
// window is served without a search:
//
//	pool := indoorpath.NewPool(g, indoorpath.PoolOptions{
//		Engine:      indoorpath.Options{Method: indoorpath.MethodAsyn},
//		WindowCache: true,
//	})
//
// Invariants: windows cover no-waiting found paths only; a served
// answer recomputes every arrival for the query's own departure from
// the stored cumulative distances (bit-identical to engine
// arithmetic — the original instants are never reused); a schedule
// swap drops the whole store with the backend; InvalidateSlot drops
// windows overlapping the slot's time range. Results carry provenance
// (BatchResult.Hit: "exact" | "window" | "miss"), PoolStats counts
// WindowHits, and BenchmarkPoolRouteSweep measures the effect (the
// exact cache runs one search per sweep departure; the window cache
// runs roughly one per checkpoint slot).
//
// # Point-free answers
//
// Both caches above key on exact endpoint POINTS, so a neighborhood
// crowd — many walkers between the same two rooms, no two standing on
// the same spot — scores zero reuse: every jittered endpoint is a
// fresh key. PoolOptions.SkeletonCache (itspqd -skeleton-cache) adds
// the point-free layer: from each found engine answer the pool strips
// the point-dependent first and last legs and stores the remaining
// door-to-door SKELETON — the door chain with cumulative door-to-door
// distances — keyed by (source partition, target partition, checkpoint
// slot). A later query between ANY points of the same partition pair
// and slot is answered by composition: first leg = straight walk from
// the new source to the chain's entry door, skeleton legs replayed
// from the stored cumulative distances, last leg = straight walk from
// the exit door to the new target, every arrival re-derived with
// bit-identical engine arithmetic and every door re-checked against
// the slot's schedule snapshot.
//
// Soundness is certify-or-refuse. A family is exhaustive, not a
// sample: it holds, for EVERY open entry door of the source partition,
// the best frozen-topology chain to every reachable anchor door of the
// target partition (within a checkpoint slot every door's state is
// constant, so slot-start openness is openness throughout), and
// composition minimises first + chain + last over all of them — which
// is exactly the optimum a fresh search would find, whatever the
// endpoint positions. When the composed answer cannot be certified
// byte-identical to a fresh run — the departure falls outside the
// family's slot window, no chain reaches both points with finite
// legs, the walk would cross the slot's closing checkpoint, or two
// chains tie exactly for the minimum (the engine's winner would
// depend on settle order) — the probe REFUSES and the query falls
// through to a full engine search (miss reason
// "skeleton_uncertified"), never to an approximate answer.
//
// Probe order is exact cache, then validity windows, then skeletons,
// then the engine; provenance rides the wire as "hit":"skeleton",
// PoolStats counts SkeletonHits (the /statsz partition invariant
// becomes exact + window + skeleton + deduped + misses == queries),
// /cachez reports skeleton-store occupancy and per-pair day coverage,
// and a schedule swap drops the store with everything else — epochs
// make a raced certification unstorable, exactly like the window
// store. BenchmarkPoolRouteNeighborhood self-checks the effect in CI:
// a 256-query jittered crowd between one hot partition pair is served
// by ~1 engine search instead of 256.
//
// # Shared execution
//
// The paper's workloads are many-queries-few-endpoints: rush-hour
// crowds heading to one gate, boarding calls, mall openings. Dedup and
// the caches only help when queries repeat; PoolOptions.SharedBatch
// goes further and makes distinct queries share searches (after Mahmud
// et al., "Shared Execution of Path Queries on Road Networks"). The
// planner (internal/batchplan) partitions each RouteBatch into groups
// with a common endpoint — same source point, departure and speed for
// the temporal methods; the time-blind static method merges departures
// and also groups by destination — and each group is answered by ONE
// engine run: Engine.RouteMany keeps one forward temporal search
// expanding past the first target until every grouped target's entry
// is settled, then reconstructs one path per target;
// Engine.RouteManyTo serves static destination groups with one reverse
// run over the arc-reversed door graph (temporal methods fall back to
// source grouping — a reverse run cannot replay forward arrival-time
// checks).
//
// Soundness of settled-partition expansion: a solo Route prunes
// expansion through its target's partition; the shared run cannot (it
// serves many targets), so it expands through them. Under the
// convex-cell model this preserves every per-target answer — a
// shortest route never leaves and re-enters the target's own partition
// (entering once and walking straight to the target is strictly
// shorter), so every door on a target's answer path keeps its solo
// distance and prev chain, and each target's entry is finalised at the
// exact frontier position where its solo search would have popped the
// virtual target node. Per-target rule-2 exemptions cannot be shared:
// queries whose grouping-relevant endpoint partition is private run
// solo. Answers are byte-identical to a sequential per-query engine
// whenever the shortest valid path is unique (under an exact
// float-length tie a shared run may return the other, equally shortest
// answer); shared answers feed the exact and window caches like any
// search result. Stats.SharedRuns / SharedAnswers count the sharing,
// and BenchmarkPoolRouteBatchShared shows a 64-target fan-out served
// by 1 engine search instead of 64.
//
// # Request coalescing
//
// Shared execution only helps queries that arrive in the same
// RouteBatch call; under live traffic shareable singletons arrive
// milliseconds apart on separate requests, each paying a full search.
// NewCoalescer puts a standing accumulator in front of a pool: solo
// Route calls enqueue into a small hold window (CoalescerOptions.Hold,
// default 2ms; the first arrival arms the flush timer) and the held
// queries are flushed as ONE shared-execution batch through
// RouteBatchSummary — planned with the same batchplan grouping keys
// and executed with the same engine primitives, so every caller
// receives exactly the result a solo Pool.Route would have produced
// (byte-identical by the shared-execution soundness argument above).
// Non-shareable arrivals simply plan Solo inside the flush; reaching
// CoalescerOptions.MaxGroup flushes immediately. The semantics:
//
//   - Latency bound: a request waits at most the hold window plus one
//     flush execution; singleton windows flush on the timer and cost
//     nothing but the hold.
//   - Swap atomicity: one flush is one RouteBatchSummary call pinning
//     one pool backend, so a held queue racing
//     SetGraph/UpdateSchedules drains entirely old or entirely new,
//     never a mix.
//   - Provenance and accounting: answers out of a multi-query flush
//     carry Coalesced (and "coalesced" on the HTTP wire);
//     CoalescerStats counts flushes, coalesced groups and answers and
//     keeps a hold-time histogram, surfaced per venue and method on
//     /statsz and /metricsz.
//
// On the daemon, -coalesce (with -coalesce-hold) enables it in front
// of every venue pool and implies -shared-batch;
// BenchmarkServerRouteCoalesced shows a 64-client concurrent
// solo-request burst answered with ~0.016 engine searches per query
// instead of 1.
//
// # HTTP serving
//
// NewServer wraps a VenueRegistry — venue IDs mapped to per-venue,
// per-method serving pools — into an http.Handler; cmd/itspqd is the
// ready-made daemon (graceful shutdown, -venues dir and -preset
// loading, -workers/-cache/-timeout tuning, -window-cache,
// -skeleton-cache, -shared-batch and -coalesce for the optimisations
// above):
//
//	itspqd -addr :8080 -preset hospital,office -venues ./venues
//
// Endpoints:
//
//	GET  /healthz                       liveness + venue count + start time + build
//	GET  /buildz                        build provenance (go version, VCS revision) + uptime
//	GET  /statsz                        per-venue, per-method pool counters
//	GET  /metricsz                      the same counters, Prometheus text format
//	GET  /tracez                        recent request traces (slowest-K + sampled);
//	                                    filters ?venue= ?method= ?min_ms= ?outcome=
//	GET  /loadz                         rolling windowed load signals (10s/1m/5m)
//	GET  /cachez                        cache occupancy + hot OD pairs + window
//	                                    coverage + per-search engine effort
//	GET  /v1/venues                     venue listing
//	POST /v1/venues                     hot venue reload (preset / JSON dir)
//	POST /v1/venues/{id}/route          one ITSPQ query
//	POST /v1/venues/{id}/route:batch    batch fan-out (dedup + cache + shared execution)
//	GET  /v1/venues/{id}/profile        day profile between two points
//	PUT  /v1/venues/{id}/schedules      live door-schedule update
//
// Route a query (times travel both as exact seconds and as "H:MM"
// strings; method is syn | asyn | static | waiting, default asyn):
//
//	curl -X POST localhost:8080/v1/venues/hospital/route \
//	  -d '{"from":{"x":30,"y":10,"floor":0},"to":{"x":5,"y":34,"floor":0},"at":"11:00"}'
//	{"found":true,"path":{"format":"(ps, lobby-er, lobby-corridor, ward-1-door, pt)",
//	 "length_m":39.57,"hops":3,"depart":"11:00","arrive":"11:00:28",...},"stats":{...}}
//
// Batches send {"method":"asyn","queries":[...]} to /route:batch and
// come back positionally aligned, with "shared", "shared_run" and
// "cache_hit" flags and a "hit" provenance ("exact" | "window" |
// "skeleton" | "miss") marking how each entry was served, plus a
// batch-level "cache" summary (queries, exact_hits, window_hits,
// skeleton_hits, searches — engine runs, so one shared run counts once
// — and shared_runs / shared_answers when the planner shared work).
// The daemon flags -window-cache, -skeleton-cache and -shared-batch
// enable the validity-window cache, the point-free skeleton store and
// the shared-execution planner on every pool. "No such routes" is
// a regular answer: HTTP 200 with {"found":false}. Validation failures
// return a structured envelope {"error":{"code":"bad_request",
// "message":"..."}} (codes: bad_request, not_found, not_indoor,
// timeout, too_large, conflict, internal). A request that exceeds the
// server deadline answers 504 "timeout"; a client that disconnects
// first gets nothing (the connection is dead) and is counted
// separately — /statsz "server" reports timeouts and client_gone side
// by side so disconnect waves cannot masquerade as slow searches.
//
// Live schedule updates map door names to ATI lists (null = always
// open, [] = always closed) and apply as one atomic swap per pool —
// concurrent routes keep flowing and each response reflects either the
// old or the new schedule set in full, never a mix:
//
//	curl -X PUT localhost:8080/v1/venues/hospital/schedules \
//	  -d '{"updates":{"ward-1-door":["10:00-18:00"]}}'
//	{"venue":"hospital","doors_updated":1,"epoch":1}
//
// Hot venue reload loads presets or server-local venue-JSON
// directories into the running daemon (IDs as at startup; duplicates
// answer 409 conflict; directory loads are gated to the daemon's
// -venues base directory and disabled without one — remote clients
// must not point the daemon at arbitrary host paths):
//
//	curl -X POST localhost:8080/v1/venues -d '{"preset":"office"}'
//	{"added":["office"],"venues":3}
//
// cmd/itspq doubles as a smoke client: itspq -server http://host:8080
// -venue hospital -from ... prints byte-identically to local mode.
// With -sweep, -to takes several ';'-separated targets — the
// multi-target day sweep is the shared planner's showcase (itspq
// -shared locally, itspqd -shared-batch on the daemon).
//
// # Workload replay
//
// internal/replay (exported as ReplayScenario / RunReplay; CLI
// cmd/itspqreplay) replays a deterministic "day in the venue" against
// a live daemon and writes BENCH_replay.json — the repo's end-to-end
// workload evidence, where every serving optimisation is judged under
// traffic instead of a micro-benchmark:
//
//	itspqreplay -scenario rush-hour -quick                    # self-hosted
//	itspqreplay -scenario flip-storm -addr http://host:8080   # your daemon
//
// A scenario is a declarative phase list: query count, concurrency and
// arrival shape (closed loop, or synchronised waves — the shape that
// exercises the coalescer), an OD skew over named partition pairs, a
// departure-time window, a method mix, an optional hot template set (a
// finite set of repeated query instances — the shape of a flash
// crowd), and optional mid-phase schedule flips (PUT /schedules racing
// the traffic). Built-ins: steady, rush-hour (dawn → rush → flash
// crowd → flip storm → taper), flash-crowd, flip-storm, and
// neighborhood — a six-query scout warms two partition pairs' skeleton
// families, then a 16-wide wave of independently jittered endpoints
// (no template set: every query is a fresh random instance, the shape
// point-keyed caches score zero on) must be answered almost entirely
// by point-free composition. The query
// stream is a pure function of (scenario, seed) — wall-clock numbers
// vary run to run, but two reports with equal stream_fingerprint
// values replayed the identical day, so replay diffs across PRs are
// apples-to-apples (a golden test pins each built-in's fingerprint).
//
// The report records, per phase: latency percentiles (p50/p95/p99/max,
// nearest-rank over every request), error and timeout tallies, answer
// provenance counted from response flags (exact/window hits,
// coalesced, shared-run, deduped), the /statsz counter movement
// (queries, engine searches, cache hits, epoch, coalescer flushes) and
// the headline searches_per_query = engine searches / queries. A
// "process" block scraped from /statsz (start time, uptime,
// goroutines, GOMAXPROCS) proves both scrapes came from one
// uninterrupted daemon.
//
// Verdicts are embedded self-checks — metric, operator, bound —
// evaluated per phase or over the whole run; itspqreplay exits
// non-zero when any fails. The built-ins assert zero errors/timeouts,
// flash-crowd < 0.25 engine searches per query (the sharing stack must
// absorb the crowd), jittered phases (rush, neighborhood) skeleton
// hits > 0 at <= 0.5 engine searches per query (only point-free
// composition can absorb endpoints that never repeat), flip-storm
// zero mixed_answers, and a generous static p99 bound as the CI
// regression gate (job replay-smoke).
//
// mixed_answers is the external atomicity audit: during flip phases
// every answer is compared against sequential-engine oracles computed
// per schedule state, and must match one of the states the daemon
// could legally have been in when it answered (bracketed by the flips
// acknowledged before the query was sent and those initiated before
// its response arrived). An answer matching no legal state would mean
// a response mixed pre- and post-flip schedules — which the serving
// layer's atomic-swap guarantee promises can never happen.
//
// # Observability
//
// Every request through the daemon is measured by internal/obs, a
// dependency-free core of lock-free fixed-bucket duration histograms
// (atomic counters; snapshots are mergeable and subtractable, so
// deltas across scrapes are exact) and per-request span traces. A
// request is split into stages — decode, hold (coalescer wait), probe
// (cache lookup), plan (batch grouping), engine (the search itself),
// store (cache fill) and render — and each stage feeds a shared
// per-stage histogram, so "where does a millisecond go" is answerable
// fleet-wide, not just per slow request. The buckets follow a
// 1–2.5–5 ladder from 10µs to 10s.
//
// /metricsz renders two histogram families in Prometheus text format
// on top of the existing counters:
//
//	indoorpath_request_seconds{venue,method,outcome}   end-to-end request latency
//	indoorpath_stage_seconds{stage}                    per-stage time, all requests
//
// Outcomes are ok, no_route, error, timeout and client_gone, so tail
// latency of failures is separable from the happy path. Every scrape
// of /statsz or /metricsz is built from ONE consistent snapshot per
// venue, and the counter partition invariant — cache_hits +
// window_hits + skeleton_hits + deduped + misses == queries,
// engine_searches <= misses — holds in every scraped body, even
// mid-traffic.
//
// GET /tracez returns recent traces from a bounded ring: the
// slowest-K requests plus a 1-in-N uniform sample, each a span list
// with stage, start offset and duration, plus venue/method/outcome
// and provenance flags (hit, coalesced, shared_run). A single route
// request can opt in with "trace": true to get the same span
// breakdown inline in its response (solo routes only; batches read
// /tracez). Tracing is opt-in per request and free when off: the
// disabled path is measured at zero additional allocations per route
// (BenchmarkPoolRouteTraceOverhead self-checks this in CI).
//
// cmd/itspqd takes -debug-addr to serve net/http/pprof on a second
// listener — a separate mux and port, so profiling never ships with
// the public API. itspqreplay -v prints a per-phase server-side stage
// breakdown table from the histogram deltas, and BENCH_replay.json
// records per-phase stage totals, server-side latency quantiles and a
// client-vs-server quantile cross-check.
//
// # Load signals and decision provenance
//
// On top of the cumulative counters, every serving pool feeds a
// lock-free ring of per-second buckets (obs.LoadRing — always on,
// allocation-free per operation; BenchmarkLoadRingFeed self-checks
// this in CI). GET /loadz reads each ring ONCE per scrape and reports
// trailing 10s / 1m / 5m windows per venue and method: arrival rate,
// exact and window hit rates, shareability (deduped + shared answers
// per query), engine searches per query, coalescer hold utilization
// (actual held time vs the configured hold — the headroom an adaptive
// hold policy would steer by) and flush fan-out. The same derived
// rates are exported as indoorpath_load_*{venue,method,window} gauges
// on /metricsz. Within every windowed view the partition invariant
// exact_hits + window_hits + deduped <= queries holds even while
// buckets rotate under concurrent feeders: a query's whole outcome is
// committed to one bucket, queries are written first and read last,
// and a bucket observed mid-rotation is dropped whole.
//
// Decision provenance answers WHY, not just how often: every cache
// miss carries a compact reason code — uncacheable, no_exact_entry,
// window_family_absent, outside_windows (a window series exists but
// the departure falls outside every cached interval), epoch_raced
// (the answer was computed but a concurrent schedule update made it
// unstorable) — and every plan member that ran a dedicated engine
// search records why it could not share: private_partition,
// singleton_group, or ablation (sharing disabled). Miss responses
// carry the code inline as "explain"; cumulative per-reason counters
// ride /statsz ("reasons") and /metricsz
// (indoorpath_reason_miss_total / indoorpath_reason_solo_total), and
// probe/plan spans attach the reason to traces. itspqreplay records
// per-phase reason deltas and the post-phase /loadz view in
// BENCH_replay.json, and -v prints the reasons table.
//
// # Workload and cache introspection
//
// GET /cachez answers "what is the cache actually holding, and for
// whom?" Per venue and method it reports, from ONE consistent snapshot
// per scrape: exact-cache, window-store and skeleton-store occupancy
// vs capacity with monotone capacity-eviction counters (they survive
// schedule-update swaps; occupancy/eviction scalars also ride
// /metricsz as indoorpath_cache_* / indoorpath_window_* /
// indoorpath_skeleton_* series); the skeleton store's per-pair
// family/chain counts with whole-pair day coverage; the window store's
// per-OD-pair coverage map — window and endpoint-family counts plus a
// day-coverage fraction, the mean per-family share of the 24h
// departure axis covered by stored validity windows (windows within a
// family are disjoint, so the fraction lies in [0, 1]); and a hot-pair
// table from a bounded space-saving heavy-hitter counter (obs.TopK —
// always on, allocation-free per feed; BenchmarkTopKFeed self-checks
// this in CI) tallying per (source partition, target partition) pair
// the queries, exact/window hits, batch dedups, engine searches and
// summed search effort, each tally exact up to the row's err_bound.
// The top-K table is snapshotted before the pool counters in every
// scrape, so pair tallies never exceed the body's query counter.
//
// Per-search engine effort — heap pops, settled nodes, edge
// relaxations and temporal-variation checks per engine run — feeds
// count-valued histograms exported as
// indoorpath_engine_effort_{pops,settled,relaxations,tv_checks} on
// /metricsz and "engine_effort" on /statsz, turning "p95 latency rose"
// into "p95 pops rose: searches got deeper" (or didn't: the engine is
// fine, the serving layer isn't). /statsz, /loadz and /cachez share
// strict ?venue=/?method= filters: unknown parameters, unregistered
// venues and unknown methods answer 400 rather than silently matching
// everything. itspqreplay scrapes /cachez and the effort histograms
// around every phase and records per-phase "hot_pairs" (top movers
// with share of phase traffic) and "engine_effort" (mean/p95 pops and
// TV checks per search) blocks in BENCH_replay.json; -v prints both
// tables.
//
// See the examples directory for runnable programs and DESIGN.md for
// the paper-to-code mapping.
package indoorpath
