// Package indoorpath is a Go implementation of indoor shortest-path
// queries for venues with temporal variations, reproducing:
//
//	Tiantian Liu, Zijin Feng, Huan Li, Hua Lu, Muhammad Aamir Cheema,
//	Hong Cheng, Jianliang Xu. "Shortest Path Queries for Indoor Venues
//	with Temporal Variations." ICDE 2020, pp. 2014–2017.
//
// Indoor entities such as doors open and close over the day; an
// ITSPQ(ps, pt, t) query returns the valid shortest indoor path from ps
// to pt departing at time t, such that every door on the path is open
// when the walker reaches it (no waiting) and no private partition is
// traversed except the ones containing the endpoints.
//
// The library provides:
//
//   - an indoor space model (partitions, directional doors, active time
//     intervals) with a builder API and JSON serialisation;
//   - the IT-Graph composite index with per-checkpoint topology
//     snapshots;
//   - the ITSPQ engine with the paper's synchronous (ITG/S) and
//     asynchronous (ITG/A) temporal checks, a temporal-unaware static
//     baseline, and an earliest-arrival router with waiting tolerance;
//   - a concurrent query-serving layer (NewPool): warm engines in a
//     sync.Pool over one shared graph, batch fan-out with
//     identical-query deduplication, and per-(source partition, target
//     partition, checkpoint slot) result caching;
//   - a service-query layer: single-source valid distances, k-nearest
//     open partitions, day profiles, path validity windows and what-if
//     schedule re-planning;
//   - synthetic venue/ATI/query generators matching the paper's
//     evaluation setup, the hand-encoded running example of the paper's
//     Figure 1, and hospital/office presets;
//   - an experiment harness regenerating every figure of the paper's
//     evaluation.
//
// # Quick start
//
//	b := indoorpath.NewBuilder("demo")
//	hall := b.AddPartition("hall", indoorpath.HallwayPartition, indoorpath.NewRect(0, 0, 20, 10, 0))
//	shop := b.AddPartition("shop", indoorpath.PublicPartition, indoorpath.NewRect(20, 0, 30, 10, 0))
//	door := b.AddDoor("door", indoorpath.PublicDoor, indoorpath.Pt(20, 5, 0),
//		indoorpath.MustSchedule("[8:00, 16:00)"))
//	b.ConnectBi(door, hall, shop)
//	venue := b.MustBuild()
//
//	g, _ := indoorpath.NewGraph(venue)
//	engine := indoorpath.NewEngine(g, indoorpath.Options{Method: indoorpath.MethodAsyn})
//	path, _, err := engine.Route(indoorpath.Query{
//		Source: indoorpath.Pt(2, 5, 0),
//		Target: indoorpath.Pt(25, 5, 0),
//		At:     indoorpath.MustParseTime("12:00"),
//	})
//	if err == nil {
//		fmt.Println(path.Format(venue), path.Length)
//	}
//
// # Concurrent serving
//
// A single Engine keeps reusable search state and is confined to one
// goroutine; the Graph underneath it is immutable and safe for any
// number of concurrent readers (snapshots materialise on first use
// behind a mutex, with lock-free steady-state lookups). NewPool wraps
// that split into a serving layer:
//
//	pool := indoorpath.NewPool(g, indoorpath.PoolOptions{
//		Engine:  indoorpath.Options{Method: indoorpath.MethodAsyn},
//		Workers: 8,
//	})
//	path, _, err := pool.Route(q)      // safe from any goroutine
//	results := pool.RouteBatch(batch)  // fan-out + dedup + caching
//
// Pool.Route answers exactly as Engine.Route would; cached results are
// shared pointers and must be treated as immutable. Live schedule
// updates go through Pool.UpdateSchedules (or Pool.SetGraph), which
// atomically swap the graph and flush the cache without draining the
// server.
//
// See the examples directory for runnable programs and DESIGN.md for
// the paper-to-code mapping.
package indoorpath
