module indoorpath

go 1.24
