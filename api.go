package indoorpath

import (
	"io"

	"indoorpath/internal/bench"
	"indoorpath/internal/coalesce"
	"indoorpath/internal/core"
	"indoorpath/internal/decompose"
	"indoorpath/internal/geom"
	"indoorpath/internal/itgraph"
	"indoorpath/internal/model"
	"indoorpath/internal/obs"
	"indoorpath/internal/render"
	"indoorpath/internal/replay"
	"indoorpath/internal/server"
	"indoorpath/internal/service"
	"indoorpath/internal/synth"
	"indoorpath/internal/temporal"
)

// Geometry types.
type (
	// Point is a location on a floor (metres; integer floor).
	Point = geom.Point
	// Rect is an axis-aligned rectangle on one floor.
	Rect = geom.Rect
	// Polygon is a simple polygon on one floor.
	Polygon = geom.Polygon
)

// Pt builds a Point.
func Pt(x, y float64, floor int) Point { return geom.Pt(x, y, floor) }

// NewRect builds a canonical rectangle from two opposite corners.
func NewRect(x1, y1, x2, y2 float64, floor int) Rect { return geom.NewRect(x1, y1, x2, y2, floor) }

// Temporal types.
type (
	// TimeOfDay is seconds since midnight.
	TimeOfDay = temporal.TimeOfDay
	// Interval is one active time interval [open, close).
	Interval = temporal.Interval
	// Schedule is a door's normalised list of ATIs.
	Schedule = temporal.Schedule
	// CheckpointSet is the sorted set of topology-change instants.
	CheckpointSet = temporal.CheckpointSet
)

// Clock builds a TimeOfDay from hours, minutes, seconds.
func Clock(h, m, s int) TimeOfDay { return temporal.Clock(h, m, s) }

// ParseTime reads "H:MM" (24-hour clock).
func ParseTime(s string) (TimeOfDay, error) { return temporal.Parse(s) }

// MustParseTime is ParseTime that panics on error.
func MustParseTime(s string) TimeOfDay { return temporal.MustParse(s) }

// ParseSchedule reads ATI notation such as "[8:00, 16:00), [18:00, 22:00)".
func ParseSchedule(s string) (Schedule, error) { return temporal.ParseSchedule(s) }

// MustSchedule is ParseSchedule that panics on error.
func MustSchedule(s string) Schedule {
	sched, err := temporal.ParseSchedule(s)
	if err != nil {
		panic(err)
	}
	return sched
}

// AlwaysOpen returns the schedule of a door with no temporal variation.
func AlwaysOpen() Schedule { return temporal.AlwaysOpen() }

// Model types.
type (
	// Venue is an immutable indoor space.
	Venue = model.Venue
	// Builder assembles a Venue.
	Builder = model.Builder
	// Partition is one indoor region (an IT-Graph vertex).
	Partition = model.Partition
	// Door is one indoor door (an IT-Graph edge label).
	Door = model.Door
	// PartitionID identifies a partition.
	PartitionID = model.PartitionID
	// DoorID identifies a door.
	DoorID = model.DoorID
	// PartitionKind classifies partitions (public/private/...).
	PartitionKind = model.PartitionKind
	// DoorKind classifies doors (public/private/virtual/...).
	DoorKind = model.DoorKind
	// VenueStats summarises a venue.
	VenueStats = model.Stats
)

// Partition kinds.
const (
	PublicPartition    = model.PublicPartition
	PrivatePartition   = model.PrivatePartition
	HallwayPartition   = model.HallwayPartition
	StairwellPartition = model.StairwellPartition
	OutdoorPartition   = model.OutdoorPartition
)

// Door kinds.
const (
	PublicDoor   = model.PublicDoor
	PrivateDoor  = model.PrivateDoor
	VirtualDoor  = model.VirtualDoor
	StairDoor    = model.StairDoor
	EntranceDoor = model.EntranceDoor
)

// NewBuilder starts an empty venue.
func NewBuilder(name string) *Builder { return model.NewBuilder(name) }

// Graph types.
type (
	// Graph is the IT-Graph over a venue.
	Graph = itgraph.Graph
	// GraphStats summarises a graph.
	GraphStats = itgraph.Stats
)

// NewGraph builds the IT-Graph (distance matrices + checkpoints) for a
// venue.
func NewGraph(v *Venue) (*Graph, error) { return itgraph.New(v) }

// SaveVenue writes a venue as JSON.
func SaveVenue(w io.Writer, v *Venue) error { return itgraph.Save(w, v) }

// LoadVenue reads a venue from JSON.
func LoadVenue(r io.Reader) (*Venue, error) { return itgraph.Load(r) }

// Query engine types.
type (
	// Query is one ITSPQ(ps, pt, t) instance.
	Query = core.Query
	// Path is a valid indoor path.
	Path = core.Path
	// Engine answers ITSPQ queries.
	Engine = core.Engine
	// Options tune the engine.
	Options = core.Options
	// Method selects the temporal check strategy.
	Method = core.Method
	// SearchStats describes one query execution.
	SearchStats = core.SearchStats
	// ManyOutcome is one query's answer from a shared-execution run
	// (Engine.RouteMany / Engine.RouteManyTo): one engine search
	// answering a whole same-endpoint group, each outcome byte-identical
	// to a solo Engine.Route whenever the shortest valid path is unique.
	ManyOutcome = core.ManyOutcome
	// StaticRouter is the temporal-unaware baseline.
	StaticRouter = core.StaticRouter
	// WaitingRouter is the earliest-arrival extension with waiting.
	WaitingRouter = core.WaitingRouter
)

// Methods.
const (
	// MethodSyn is ITG/S (synchronous ATI checks, Algorithm 2).
	MethodSyn = core.MethodSyn
	// MethodAsyn is ITG/A (asynchronous snapshot checks, Algorithms 3–4).
	MethodAsyn = core.MethodAsyn
	// MethodStatic ignores temporal variation (baseline).
	MethodStatic = core.MethodStatic
)

// Sentinel errors.
var (
	// ErrNoRoute is returned when no valid path exists at the query time.
	ErrNoRoute = core.ErrNoRoute
	// ErrNotIndoor is returned when an endpoint lies in no partition.
	ErrNotIndoor = core.ErrNotIndoor
)

// WalkingSpeedMPS is the paper's default walking speed (5 km/h).
const WalkingSpeedMPS = core.WalkingSpeedMPS

// NewEngine builds an ITSPQ engine over a graph.
func NewEngine(g *Graph, opts Options) *Engine { return core.NewEngine(g, opts) }

// NewStaticRouter builds the temporal-unaware baseline router.
func NewStaticRouter(g *Graph) *StaticRouter { return core.NewStaticRouter(g) }

// NewWaitingRouter builds the earliest-arrival router with waiting.
func NewWaitingRouter(g *Graph) *WaitingRouter { return core.NewWaitingRouter(g) }

// ValidityWindow computes the departure-time interval for which a
// returned path's door sequence stays valid (answer caching / "leave
// by" guidance).
func ValidityWindow(g *Graph, p *Path, q Query) (Interval, error) {
	return core.ValidityWindow(g, p, q)
}

// EarliestValidDeparture finds the earliest departure >= q.At for which
// a no-waiting valid path exists (probing the venue's checkpoints).
func EarliestValidDeparture(e *Engine, q Query) (TimeOfDay, *Path, bool) {
	return core.EarliestValidDeparture(e, q)
}

// StaticThenValidate is the naive baseline: compute the static shortest
// path, then reject it if any door is closed on arrival.
func StaticThenValidate(g *Graph, q Query) (*Path, error) {
	return core.StaticThenValidate(g, q)
}

// Concurrent serving types (see internal/service).
type (
	// ServicePool is a concurrent query-serving pool: warm engines in a
	// sync.Pool over one shared Graph, batch fan-out with identical-query
	// deduplication, and per-(source partition, target partition,
	// checkpoint slot) result caching.
	ServicePool = service.Pool
	// PoolOptions tune a ServicePool; the zero value is a usable default
	// (ITG/S engines, GOMAXPROCS workers, 4096-entry cache). Set
	// WindowCache to additionally enable the validity-window temporal
	// result cache (internal/tcache): answers are stored with the
	// departure interval over which they provably stay the engine's
	// answer, so nearby departure times of the same OD pair are served
	// without a search. Set SkeletonCache to enable the point-free
	// door-to-door skeleton store (core.SkeletonFamily): one miss per
	// (source partition, target partition, checkpoint slot) stores the
	// pair's door-sequence skeletons, and ANY later query between the
	// same partitions — different points, different departure inside
	// the slot — is answered by composing first leg + skeleton + last
	// leg, bit-identical to a fresh search or not at all. Set
	// SharedBatch to enable the shared-execution batch planner
	// (internal/batchplan): RouteBatch partitions each batch into
	// shared-endpoint groups and answers every group with a single
	// engine run (core.Engine.RouteMany / RouteManyTo) instead of one
	// search per query; with SkeletonCache it additionally coalesces
	// same-partition-pair leftovers so one member's search serves the
	// group through composition.
	PoolOptions = service.Options
	// PoolStats are cumulative pool counters.
	PoolStats = service.Stats
	// BatchResult is one ServicePool.RouteBatch outcome.
	BatchResult = service.Result
	// BatchSummary describes how one ServicePool.RouteBatchSummary call
	// was served: per-cache hit counts, engine runs actually executed,
	// and the shared-execution tallies.
	BatchSummary = service.BatchSummary
	// CacheHitKind is a result's cache provenance: HitMiss (engine
	// search), HitExact (exact-identity cache) or HitWindow
	// (validity-window cache, arrivals recomputed for the query's own
	// departure).
	CacheHitKind = service.Hit
)

// Cache provenance values reported in BatchResult.Hit (and as "hit" on
// the HTTP wire).
const (
	HitMiss   = service.HitMiss
	HitExact  = service.HitExact
	HitWindow = service.HitWindow
)

// NewPool builds a concurrent query-serving pool over a graph. Pool
// methods are safe for concurrent use from any number of goroutines;
// Pool.Route answers exactly as Engine.Route would, and Pool.RouteBatch
// fans a batch out over PoolOptions.Workers goroutines.
func NewPool(g *Graph, opts PoolOptions) *ServicePool { return service.New(g, opts) }

// Request-coalescing types (see internal/coalesce).
type (
	// Coalescer is the standing cross-batch request coalescer: solo
	// Route calls are held for a few milliseconds and flushed together
	// through one shared-execution batch, so shareable singleton
	// queries arriving on separate requests (same source point,
	// departure and speed — or a static shared destination) are
	// answered by ONE engine run. Every caller still receives exactly
	// the result a solo ServicePool.Route would have produced.
	Coalescer = coalesce.Coalescer
	// CoalescerOptions tune a Coalescer: the hold window (latency
	// bound) and the maximum group size per flush.
	CoalescerOptions = coalesce.Options
	// CoalescerStats are cumulative coalescer counters, including the
	// hold-time histogram.
	CoalescerStats = coalesce.Stats
)

// NewCoalescer builds a standing request coalescer over a pool. The
// pool should have PoolOptions.SharedBatch enabled — a flush is
// answered via RouteBatchSummary, and the batch planner's grouping is
// what turns held singletons into shared engine runs.
func NewCoalescer(p *ServicePool, opts CoalescerOptions) *Coalescer { return coalesce.New(p, opts) }

// Observability types (see internal/obs; served by GET /loadz and the
// "explain" / reasons surfaces).
type (
	// LoadRing is the lock-free rolling ring of per-second load
	// buckets every ServicePool feeds; LoadRing.Windows reads the
	// trailing windowed view (queries, hits, shareability, hold
	// utilization) in one pass.
	LoadRing = obs.LoadRing
	// LoadSample is one windowed (or per-operation) set of load
	// signals — the unit both fed into and read out of a LoadRing.
	LoadSample = obs.LoadSample
	// DecisionReason is a compact provenance code: why a query missed
	// the caches or why a plan member ran a dedicated engine search.
	// Its String form is the wire vocabulary ("no_exact_entry",
	// "outside_windows", "private_partition", ...).
	DecisionReason = obs.Reason
	// ReasonStats are cumulative per-reason counters (part of
	// PoolStats and the /statsz body).
	ReasonStats = service.ReasonStats
)

// LoadWindows are the trailing spans, in seconds, every windowed load
// view reports (10s, 1m, 5m).
var LoadWindows = obs.LoadWindows

// HTTP serving types (see internal/server and cmd/itspqd).
type (
	// Server is the HTTP/JSON front-end over a VenueRegistry: route,
	// batch, day-profile, live schedule-update, listing, health and
	// stats endpoints. It implements http.Handler.
	Server = server.Server
	// ServerOptions tune a Server (request timeout, batch and body
	// limits); the zero value is a usable default.
	ServerOptions = server.Options
	// VenueRegistry maps venue IDs to per-venue serving pools (one
	// ServicePool per engine method, all over one shared graph).
	VenueRegistry = server.Registry
	// ServedVenue is one registry entry: per-method pools plus the
	// atomic live schedule-update hook.
	ServedVenue = server.Venue
)

// NewVenueRegistry builds an empty venue registry; venues added later
// (Add, AddGraph, LoadDir, AddPresets) each get one serving pool per
// engine method configured from opts.
func NewVenueRegistry(opts PoolOptions) *VenueRegistry { return server.NewRegistry(opts) }

// NewServer builds the HTTP/JSON query server over a registry. The
// result is an http.Handler; cmd/itspqd wires it into an http.Server
// with graceful shutdown.
func NewServer(reg *VenueRegistry, opts ServerOptions) *Server { return server.New(reg, opts) }

// PresetVenue builds one built-in venue model by preset name (mall,
// hospital, office, figure1) — the same model `itspqd -preset` serves.
func PresetVenue(name string) (*Venue, error) { return server.PresetVenue(name) }

// Workload replay types (see internal/replay and cmd/itspqreplay).
type (
	// ReplayScenario is a declarative replay workload: a named phase
	// list over one preset venue plus self-check verdicts.
	ReplayScenario = replay.Scenario
	// ReplayOptions configure a replay run (target daemon URL, HTTP
	// client, quick marker, progress logging).
	ReplayOptions = replay.Options
	// ReplayReport is the structured outcome of one replay run — the
	// BENCH_replay.json artifact, verdicts included.
	ReplayReport = replay.Report
)

// BuiltinReplayScenario returns a built-in replay scenario by name
// (see ReplayScenarios); quick shrinks per-phase query counts 10x for
// smoke runs.
func BuiltinReplayScenario(name string, quick bool) (*ReplayScenario, error) {
	return replay.Builtin(name, quick)
}

// ReplayScenarios lists the built-in replay scenario names.
func ReplayScenarios() []string { return replay.Scenarios() }

// RunReplay replays a scenario against a live daemon and returns the
// report with its verdicts evaluated.
func RunReplay(sc *ReplayScenario, opts ReplayOptions) (*ReplayReport, error) {
	return replay.Run(sc, opts)
}

// Service-query types (indoor LBS layer).
type (
	// DistanceMap holds single-source valid shortest distances.
	DistanceMap = core.DistanceMap
	// Near is one k-nearest-partitions result.
	Near = core.Near
	// ProfileEntry is one checkpoint slot of a day profile.
	ProfileEntry = core.ProfileEntry
)

// SingleSource computes temporally valid shortest distances from src at
// time at to every reachable door and partition (speed 0 = 5 km/h).
func SingleSource(g *Graph, src Point, at TimeOfDay, speed float64) (*DistanceMap, error) {
	return core.SingleSource(g, src, at, speed)
}

// NearestPartitions returns the k nearest reachable partitions at the
// given time (nil filter = public rooms), sorted by valid distance.
func NearestPartitions(g *Graph, src Point, at TimeOfDay, k int, filter func(Partition) bool) ([]Near, error) {
	return core.NearestPartitions(g, src, at, k, filter)
}

// DayProfile answers the OD pair at the start of every checkpoint slot,
// summarising how reachability and length evolve over the day.
func DayProfile(e *Engine, src, tgt Point) ([]ProfileEntry, error) {
	return core.DayProfile(e, src, tgt)
}

// OracleShortest exhaustively finds the shortest valid simple path on
// small venues — a testing reference, exponential in venue size.
func OracleShortest(g *Graph, q Query) core.OracleResult { return core.OracleShortest(g, q) }

// Route is a convenience one-shot: build a graph and engine, answer one
// query with ITG/A. For repeated queries construct a Graph and Engine
// once and reuse them.
func Route(v *Venue, q Query) (*Path, error) {
	g, err := NewGraph(v)
	if err != nil {
		return nil, err
	}
	p, _, err := NewEngine(g, Options{Method: MethodAsyn}).Route(q)
	return p, err
}

// Synthetic data types.
type (
	// MallConfig parameterises the paper's synthetic mall generator.
	MallConfig = synth.MallConfig
	// Mall is a generated mall venue with harness handles.
	Mall = synth.Mall
	// ATIConfig controls temporal-variation generation.
	ATIConfig = synth.ATIConfig
	// QueryConfig controls δs2t-targeted query generation.
	QueryConfig = synth.QueryConfig
	// QueryInstance is a generated (source, target) pair.
	QueryInstance = synth.QueryInstance
	// PaperExample is the paper's Figure 1 / Table I running example.
	PaperExample = synth.PaperExample
)

// GenerateMall builds the paper's synthetic venue (141 partitions and
// 224 doors per floor; 5 floors by default).
func GenerateMall(cfg MallConfig) (*Mall, error) { return synth.GenerateMall(cfg) }

// GenerateQueries produces query instances whose static indoor distance
// approximates cfg.S2T, using the graph's distance matrices.
func GenerateQueries(m *Mall, g *Graph, cfg QueryConfig) ([]QueryInstance, error) {
	return synth.GenerateQueries(m, g.DM(), cfg)
}

// PaperFigure1 builds the paper's running-example venue.
func PaperFigure1() *PaperExample { return synth.PaperFigure1() }

// Hospital builds the hospital-wing preset (visiting hours, 24 h ER).
func Hospital() *Venue { return synth.Hospital() }

// Office builds the office-floor preset (core hours, one-way fire exit).
func Office() *Venue { return synth.Office() }

// Decomposition types.
type (
	// Decomposition is a rectilinear polygon split into cells + virtual
	// doors.
	Decomposition = decompose.Decomposition
)

// Decompose splits a rectilinear polygon into rectangular cells with
// virtual doors (the hallway decomposition of the paper's venue).
func Decompose(pg Polygon) (*Decomposition, error) { return decompose.Decompose(pg) }

// RenderSVG writes one floor of the venue as an SVG floor plan (the
// shape of the paper's Figure 1). A non-negative at colours doors by
// openness at that instant.
func RenderSVG(w io.Writer, v *Venue, floor int, at TimeOfDay) error {
	return render.WriteSVG(w, v, render.SVGOptions{Floor: floor, Labels: true, At: at})
}

// RenderDOT writes the venue's accessibility graph in Graphviz DOT form
// (the shape of the paper's Figure 2).
func RenderDOT(w io.Writer, v *Venue) error { return render.WriteDOT(w, v) }

// Experiment harness types.
type (
	// BenchConfig controls experiment scale.
	BenchConfig = bench.Config
	// FigureData is one regenerated figure.
	FigureData = bench.FigureData
)

// Experiment runners, one per paper figure (see EXPERIMENTS.md).
var (
	RunFig4     = bench.RunFig4
	RunFig5     = bench.RunFig5
	RunFig6And7 = bench.RunFig6And7
)

// RenderFigureTable renders a figure as an aligned text table.
func RenderFigureTable(fd *FigureData) string { return bench.RenderTable(fd) }

// RenderFigureCSV renders a figure as CSV.
func RenderFigureCSV(fd *FigureData) string { return bench.RenderCSV(fd) }
