// Benchmarks regenerating every figure of the paper's evaluation
// (Liu et al., ICDE 2020, Sec. III) as go-test benchmarks. Each figure
// also has a row-printing runner in cmd/experiments; these benches give
// per-setting ns/op + allocs under the standard Go benchmark harness.
//
//	go test -bench=. -benchmem
//
// Venue scale follows the paper defaults (5-floor mall, |T|=8,
// δs2t=1500 m, t=12:00; 5 query instances per setting). Shapes to
// compare against the paper: Fig. 4 flat in |T| at t=12 and decreasing
// at t=8; Fig. 5 mildly increasing in δs2t; Fig. 6/7 low at night with
// a 10:00–20:00 plateau; ITG/A at or below ITG/S throughout.
package indoorpath_test

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	indoorpath "indoorpath"
	"indoorpath/internal/server"
)

// testbed bundles a generated venue with its graph and query set.
type testbed struct {
	graph   *indoorpath.Graph
	queries []indoorpath.Query
}

func newTestbed(b *testing.B, floors, tSize int, s2t float64, at indoorpath.TimeOfDay) *testbed {
	b.Helper()
	m, err := indoorpath.GenerateMall(indoorpath.MallConfig{
		Floors: floors,
		Seed:   42,
		ATI:    indoorpath.ATIConfig{CheckpointCount: tSize, Seed: 43},
	})
	if err != nil {
		b.Fatal(err)
	}
	g, err := indoorpath.NewGraph(m.Venue)
	if err != nil {
		b.Fatal(err)
	}
	qis, err := indoorpath.GenerateQueries(m, g, indoorpath.QueryConfig{S2T: s2t, Count: 5, Seed: 44})
	if err != nil {
		b.Fatal(err)
	}
	tb := &testbed{graph: g}
	for _, qi := range qis {
		tb.queries = append(tb.queries, indoorpath.Query{Source: qi.Source, Target: qi.Target, At: at})
	}
	return tb
}

func (tb *testbed) atTime(at indoorpath.TimeOfDay) []indoorpath.Query {
	out := make([]indoorpath.Query, len(tb.queries))
	for i, q := range tb.queries {
		q.At = at
		out[i] = q
	}
	return out
}

// runQueries is the timed kernel: route the query set round-robin,
// reporting the modelled working set (the paper's Fig. 7 metric) as a
// custom benchmark metric.
func runQueries(b *testing.B, g *indoorpath.Graph, method indoorpath.Method, qs []indoorpath.Query) {
	b.Helper()
	e := indoorpath.NewEngine(g, indoorpath.Options{Method: method})
	for _, q := range qs { // warmup: snapshots, allocator
		if _, _, err := e.RouteOrNil(q); err != nil {
			b.Fatal(err)
		}
	}
	var estBytes float64
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, st, err := e.RouteOrNil(qs[i%len(qs)])
		if err != nil {
			b.Fatal(err)
		}
		estBytes += float64(st.BytesEstimate)
	}
	b.StopTimer()
	b.ReportMetric(estBytes/float64(b.N)/1024, "estKB/query")
}

var figMethods = []struct {
	name string
	m    indoorpath.Method
}{
	{"ITG-S", indoorpath.MethodSyn},
	{"ITG-A", indoorpath.MethodAsyn},
}

// BenchmarkFig4TimeVsCheckpoints regenerates Fig. 4: search time vs |T|
// for both methods at t=12:00 and t=8:00.
func BenchmarkFig4TimeVsCheckpoints(b *testing.B) {
	for _, tSize := range []int{4, 8, 12, 16} {
		tb := newTestbed(b, 5, tSize, 1500, indoorpath.Clock(12, 0, 0))
		for _, at := range []indoorpath.TimeOfDay{indoorpath.Clock(12, 0, 0), indoorpath.Clock(8, 0, 0)} {
			qs := tb.atTime(at)
			for _, fm := range figMethods {
				b.Run(fmt.Sprintf("T=%d/t=%v/%s", tSize, at, fm.name), func(b *testing.B) {
					runQueries(b, tb.graph, fm.m, qs)
				})
			}
		}
	}
}

// BenchmarkFig5TimeVsDistance regenerates Fig. 5: search time vs δs2t.
func BenchmarkFig5TimeVsDistance(b *testing.B) {
	for _, s2t := range []float64{1100, 1300, 1500, 1700, 1900} {
		tb := newTestbed(b, 5, 8, s2t, indoorpath.Clock(12, 0, 0))
		for _, fm := range figMethods {
			b.Run(fmt.Sprintf("s2t=%.0f/%s", s2t, fm.name), func(b *testing.B) {
				runQueries(b, tb.graph, fm.m, tb.queries)
			})
		}
	}
}

// BenchmarkFig6TimeVsQueryTime regenerates Fig. 6: search time vs t
// over the day (0:00–22:00 in 2 h steps).
func BenchmarkFig6TimeVsQueryTime(b *testing.B) {
	tb := newTestbed(b, 5, 8, 1500, indoorpath.Clock(12, 0, 0))
	for hour := 0; hour <= 22; hour += 2 {
		qs := tb.atTime(indoorpath.Clock(hour, 0, 0))
		for _, fm := range figMethods {
			b.Run(fmt.Sprintf("t=%d/%s", hour, fm.name), func(b *testing.B) {
				runQueries(b, tb.graph, fm.m, qs)
			})
		}
	}
}

// BenchmarkFig7MemoryVsQueryTime regenerates Fig. 7: memory cost vs t.
// The estKB/query metric is the figure's series; -benchmem B/op gives
// the live allocation view.
func BenchmarkFig7MemoryVsQueryTime(b *testing.B) {
	tb := newTestbed(b, 5, 8, 1500, indoorpath.Clock(12, 0, 0))
	for hour := 0; hour <= 22; hour += 4 {
		qs := tb.atTime(indoorpath.Clock(hour, 0, 0))
		for _, fm := range figMethods {
			b.Run(fmt.Sprintf("t=%d/%s", hour, fm.name), func(b *testing.B) {
				runQueries(b, tb.graph, fm.m, qs)
			})
		}
	}
}

// BenchmarkAblationEagerHeap measures A1: the literal Algorithm 1
// initialisation (every door enheaped at ∞) vs lazy insertion.
func BenchmarkAblationEagerHeap(b *testing.B) {
	tb := newTestbed(b, 5, 8, 1500, indoorpath.Clock(12, 0, 0))
	for _, variant := range []struct {
		name  string
		eager bool
	}{{"lazy", false}, {"eager", true}} {
		b.Run(variant.name, func(b *testing.B) {
			e := indoorpath.NewEngine(tb.graph, indoorpath.Options{
				Method: indoorpath.MethodSyn, EagerHeapInit: variant.eager,
			})
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, _, err := e.RouteOrNil(tb.queries[i%len(tb.queries)]); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationDistanceMatrix measures A3: DM lookup vs on-the-fly
// Euclidean recomputation.
func BenchmarkAblationDistanceMatrix(b *testing.B) {
	tb := newTestbed(b, 5, 8, 1500, indoorpath.Clock(12, 0, 0))
	for _, variant := range []struct {
		name string
		noDM bool
	}{{"dm-lookup", false}, {"recompute", true}} {
		b.Run(variant.name, func(b *testing.B) {
			e := indoorpath.NewEngine(tb.graph, indoorpath.Options{
				Method: indoorpath.MethodSyn, NoDistanceMatrix: variant.noDM,
			})
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, _, err := e.RouteOrNil(tb.queries[i%len(tb.queries)]); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationCheckerMicro measures A2: the isolated per-door cost
// of the synchronous ATI probe vs the asynchronous snapshot probe.
func BenchmarkAblationCheckerMicro(b *testing.B) {
	tb := newTestbed(b, 1, 8, 750, indoorpath.Clock(12, 0, 0))
	venue := tb.graph.Venue()
	at := indoorpath.Clock(12, 0, 0)
	b.Run("syn-ati-probe", func(b *testing.B) {
		doors := venue.Doors()
		b.ResetTimer()
		n := 0
		for i := 0; i < b.N; i++ {
			if doors[i%len(doors)].OpenAt(at) {
				n++
			}
		}
		_ = n
	})
	b.Run("asyn-snapshot-probe", func(b *testing.B) {
		snap := tb.graph.Snapshots().At(at)
		b.ResetTimer()
		n := 0
		for i := 0; i < b.N; i++ {
			if snap.DoorOpen(indoorpath.DoorID(i % venue.DoorCount())) {
				n++
			}
		}
		_ = n
	})
}

// BenchmarkAblationPartitionExpansion measures A6: exact multi-entry
// partition expansion (default, optimal paths) vs the literal "visited
// partitions" pruning of Algorithm 1 (faster, can return longer paths).
func BenchmarkAblationPartitionExpansion(b *testing.B) {
	tb := newTestbed(b, 5, 8, 1500, indoorpath.Clock(12, 0, 0))
	for _, variant := range []struct {
		name    string
		literal bool
	}{{"exact", false}, {"literal", true}} {
		b.Run(variant.name, func(b *testing.B) {
			e := indoorpath.NewEngine(tb.graph, indoorpath.Options{
				Method: indoorpath.MethodSyn, SinglePartitionExpansion: variant.literal,
			})
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, _, err := e.RouteOrNil(tb.queries[i%len(tb.queries)]); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationFloors measures A5: venue scaling.
func BenchmarkAblationFloors(b *testing.B) {
	for _, floors := range []int{1, 3, 5, 7} {
		s2t := 1500.0
		if floors == 1 {
			s2t = 750
		}
		tb := newTestbed(b, floors, 8, s2t, indoorpath.Clock(12, 0, 0))
		for _, fm := range figMethods {
			b.Run(fmt.Sprintf("floors=%d/%s", floors, fm.name), func(b *testing.B) {
				runQueries(b, tb.graph, fm.m, tb.queries)
			})
		}
	}
}

// BenchmarkAblationPrivateFraction measures A4: effect of private
// partitions on search (they prune expansion).
func BenchmarkAblationPrivateFraction(b *testing.B) {
	for _, private := range []int{1, 10, 30} {
		m, err := indoorpath.GenerateMall(indoorpath.MallConfig{
			Floors: 3, Seed: 42, PrivateShopsPerFloor: private,
			ATI: indoorpath.ATIConfig{CheckpointCount: 8, Seed: 43},
		})
		if err != nil {
			b.Fatal(err)
		}
		g, err := indoorpath.NewGraph(m.Venue)
		if err != nil {
			b.Fatal(err)
		}
		qis, err := indoorpath.GenerateQueries(m, g, indoorpath.QueryConfig{S2T: 1500, Count: 5, Seed: 44})
		if err != nil {
			b.Fatal(err)
		}
		var qs []indoorpath.Query
		for _, qi := range qis {
			qs = append(qs, indoorpath.Query{Source: qi.Source, Target: qi.Target, At: indoorpath.Clock(12, 0, 0)})
		}
		b.Run(fmt.Sprintf("private=%d", private), func(b *testing.B) {
			runQueries(b, g, indoorpath.MethodSyn, qs)
		})
	}
}

// BenchmarkPoolRoute measures concurrent serving throughput: N worker
// goroutines hammer one shared ServicePool (one shared graph, pooled
// engines) over the synth-mall workload at many departure times. The
// result cache is disabled so every query is a real search — the
// queries/s metric is pure engine-pool scaling, expected to grow
// roughly linearly in workers up to the core count.
func BenchmarkPoolRoute(b *testing.B) {
	tb := newTestbed(b, 5, 8, 1500, indoorpath.Clock(12, 0, 0))
	// Spread the OD pairs over the day so concurrent workers touch many
	// snapshot slots, not one.
	var qs []indoorpath.Query
	for hour := 0; hour <= 22; hour += 2 {
		qs = append(qs, tb.atTime(indoorpath.Clock(hour, 0, 0))...)
	}
	tb.graph.Snapshots().BuildAll() // amortise Graph_Update outside the timed section
	for _, workers := range []int{1, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			pool := indoorpath.NewPool(tb.graph, indoorpath.PoolOptions{
				Engine:        indoorpath.Options{Method: indoorpath.MethodAsyn},
				Workers:       workers,
				CacheCapacity: -1,
			})
			for _, q := range qs { // warmup: engines, allocator
				if _, _, err := pool.Route(q); err != nil && err != indoorpath.ErrNoRoute {
					b.Fatal(err)
				}
			}
			b.ReportAllocs()
			b.ResetTimer()
			var next atomic.Int64
			var wg sync.WaitGroup
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					for {
						n := int(next.Add(1)) - 1
						if n >= b.N {
							return
						}
						if _, _, err := pool.Route(qs[n%len(qs)]); err != nil && err != indoorpath.ErrNoRoute {
							b.Error(err)
							return
						}
					}
				}()
			}
			wg.Wait()
			b.StopTimer()
			if secs := b.Elapsed().Seconds(); secs > 0 {
				b.ReportMetric(float64(b.N)/secs, "queries/s")
			}
		})
	}
}

// BenchmarkPoolRouteTraceOverhead pins the cost of DISABLED tracing on
// the serving hot path: RouteTraced with a nil trace must cost exactly
// what Route costs — on a warm cache hit, zero allocations. The
// benchmark self-checks (allocs/op of the traced entry point must not
// exceed the untraced baseline, and the baseline must be 0) so a
// regression fails the bench run rather than just shifting a number.
func BenchmarkPoolRouteTraceOverhead(b *testing.B) {
	tb := newTestbed(b, 5, 8, 1500, indoorpath.Clock(12, 0, 0))
	tb.graph.Snapshots().BuildAll()
	pool := indoorpath.NewPool(tb.graph, indoorpath.PoolOptions{
		Engine: indoorpath.Options{Method: indoorpath.MethodAsyn},
	})
	q := tb.queries[0]
	if r := pool.RouteResult(q); r.Err != nil && r.Err != indoorpath.ErrNoRoute {
		b.Fatal(r.Err) // warm the exact cache
	}
	base := testing.AllocsPerRun(200, func() { pool.RouteResult(q) })
	traced := testing.AllocsPerRun(200, func() { pool.RouteTraced(nil, q) })
	if traced > base {
		b.Fatalf("nil-trace route allocates %v allocs/op vs %v untraced", traced, base)
	}
	if base != 0 {
		b.Fatalf("warm cache-hit route allocates %v allocs/op, want 0", base)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pool.RouteTraced(nil, q)
	}
}

// BenchmarkPoolRouteBatch measures the batch path: one RouteBatch call
// fanning a mixed-time batch (with duplicates) out over the worker
// group, with deduplication and caching enabled — the expected serving
// configuration.
func BenchmarkPoolRouteBatch(b *testing.B) {
	tb := newTestbed(b, 5, 8, 1500, indoorpath.Clock(12, 0, 0))
	var batch []indoorpath.Query
	for hour := 0; hour <= 22; hour += 2 {
		batch = append(batch, tb.atTime(indoorpath.Clock(hour, 0, 0))...)
	}
	batch = append(batch, batch[:len(batch)/4]...) // duplicate tail: dedup work
	tb.graph.Snapshots().BuildAll()
	for _, workers := range []int{1, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			pool := indoorpath.NewPool(tb.graph, indoorpath.PoolOptions{
				Engine:  indoorpath.Options{Method: indoorpath.MethodAsyn},
				Workers: workers,
			})
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				pool.InvalidateCache() // each iteration recomputes the batch
				rs := pool.RouteBatch(batch)
				for _, r := range rs {
					if r.Err != nil && r.Err != indoorpath.ErrNoRoute {
						b.Fatal(r.Err)
					}
				}
			}
			b.StopTimer()
			if secs := b.Elapsed().Seconds(); secs > 0 {
				b.ReportMetric(float64(b.N*len(batch))/secs, "queries/s")
			}
		})
	}
}

// BenchmarkPoolRouteSweep measures the validity-window cache on its
// motivating workload: a fine departure-time sweep of fixed OD pairs
// (the time-sweep / rush-hour shape where thousands of queries differ
// only in departure). The exact cache gets zero reuse here — every
// departure is a distinct key — while the window cache serves every
// same-slot repeat from one search. Compare the windowHits/op and
// searches/op metrics across the two sub-benchmarks: window must show
// hits > 0 and strictly fewer engine searches (the invariant is also
// test-enforced in internal/service TestWindowPoolSweepBeatsExact).
func BenchmarkPoolRouteSweep(b *testing.B) {
	tb := newTestbed(b, 5, 8, 1500, indoorpath.Clock(12, 0, 0))
	tb.graph.Snapshots().BuildAll()
	// One day sweep per OD pair at 5-minute steps.
	var batch []indoorpath.Query
	for _, q := range tb.queries {
		for min := 0; min < 24*60; min += 5 {
			q.At = indoorpath.TimeOfDay(min * 60)
			batch = append(batch, q)
		}
	}
	for _, mode := range []struct {
		name   string
		window bool
	}{{"exact", false}, {"window", true}} {
		b.Run(mode.name, func(b *testing.B) {
			pool := indoorpath.NewPool(tb.graph, indoorpath.PoolOptions{
				Engine:      indoorpath.Options{Method: indoorpath.MethodAsyn},
				Workers:     4,
				WindowCache: mode.window,
			})
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				pool.InvalidateCache() // each iteration recomputes the sweep
				for _, r := range pool.RouteBatch(batch) {
					if r.Err != nil && r.Err != indoorpath.ErrNoRoute {
						b.Fatal(r.Err)
					}
				}
			}
			b.StopTimer()
			st := pool.Stats()
			b.ReportMetric(float64(st.WindowHits)/float64(b.N), "windowHits/op")
			b.ReportMetric(float64(st.CacheMisses())/float64(b.N), "searches/op")
			if secs := b.Elapsed().Seconds(); secs > 0 {
				b.ReportMetric(float64(b.N*len(batch))/secs, "queries/s")
			}
			if mode.window && st.WindowHits == 0 {
				b.Fatalf("window sweep served no window hits: %v", st)
			}
		})
	}
}

// BenchmarkPoolRouteBatchShared measures the shared-execution batch
// planner on its motivating workload: one source (a crowd position)
// fanning out to 64 distinct targets at one departure — rush-hour
// traffic to the gates. Unshared, the batch costs one engine search
// per distinct target; with SharedBatch the whole fan-out is answered
// by ONE multi-target run (searches/op ≈ 1 vs 64). The ≥2× search
// reduction is self-checked via Stats.SharedRuns / EngineSearches, and
// answers remain byte-identical to the sequential engine (the oracle
// suite in internal/service proves that; here we check the counters).
func BenchmarkPoolRouteBatchShared(b *testing.B) {
	tb := newTestbed(b, 5, 8, 1500, indoorpath.Clock(12, 0, 0))
	tb.graph.Snapshots().BuildAll()
	v := tb.graph.Venue()
	src := tb.queries[0].Source
	var batch []indoorpath.Query
	for _, part := range v.Partitions() {
		if part.Kind != indoorpath.PublicPartition {
			continue
		}
		r := part.Rect
		c := indoorpath.Pt((r.MinX+r.MaxX)/2, (r.MinY+r.MaxY)/2, part.Floor())
		batch = append(batch, indoorpath.Query{Source: src, Target: c, At: indoorpath.Clock(12, 0, 0)})
		if len(batch) == 64 {
			break
		}
	}
	if len(batch) != 64 {
		b.Fatalf("only %d public-partition targets", len(batch))
	}
	for _, mode := range []struct {
		name   string
		shared bool
	}{{"unshared", false}, {"shared", true}} {
		b.Run(mode.name, func(b *testing.B) {
			pool := indoorpath.NewPool(tb.graph, indoorpath.PoolOptions{
				Engine:      indoorpath.Options{Method: indoorpath.MethodAsyn},
				Workers:     4,
				SharedBatch: mode.shared,
			})
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				pool.InvalidateCache() // each iteration recomputes the batch
				rs, _ := pool.RouteBatchSummary(batch)
				for _, r := range rs {
					if r.Err != nil && r.Err != indoorpath.ErrNoRoute {
						b.Fatal(r.Err)
					}
				}
			}
			b.StopTimer()
			st := pool.Stats()
			b.ReportMetric(float64(st.EngineSearches)/float64(b.N), "searches/op")
			b.ReportMetric(float64(st.SharedRuns)/float64(b.N), "sharedRuns/op")
			if secs := b.Elapsed().Seconds(); secs > 0 {
				b.ReportMetric(float64(b.N*len(batch))/secs, "queries/s")
			}
			if mode.shared {
				if st.SharedRuns == 0 || st.SharedRuns >= int64(len(batch)) {
					b.Fatalf("shared runs out of range (want 0 < runs < %d per batch): %v", len(batch), st)
				}
				if st.EngineSearches*2 > st.Queries {
					b.Fatalf("shared batch did not at least halve engine searches: %v", st)
				}
			} else if st.SharedRuns != 0 {
				b.Fatalf("unshared pool reported shared runs: %v", st)
			}
		})
	}
}

// BenchmarkPoolRouteNeighborhood measures the skeleton-family store on
// its motivating workload: a crowd of queries between one hot
// partition pair where every endpoint is independently jittered — no
// two queries share an exact point, so the exact and window caches get
// zero reuse and only door-to-door skeleton composition can absorb the
// load. Compare skeletonHits/op and searches/op across the two
// sub-benchmarks; skeleton mode self-checks hits > 0 and at most half
// an engine search per query, so a regression fails the bench run
// rather than just shifting a number.
func BenchmarkPoolRouteNeighborhood(b *testing.B) {
	tb := newTestbed(b, 5, 8, 1500, indoorpath.Clock(12, 0, 0))
	tb.graph.Snapshots().BuildAll()
	v := tb.graph.Venue()
	// Pick the first testbed OD pair that actually routes at noon; its
	// endpoint partitions are the hot pair the crowd queries between.
	probe := indoorpath.NewPool(tb.graph, indoorpath.PoolOptions{
		Engine: indoorpath.Options{Method: indoorpath.MethodAsyn}, CacheCapacity: -1,
	})
	var base indoorpath.Query
	routable := false
	for _, q := range tb.queries {
		if r := probe.RouteResult(q); r.Err == nil {
			base, routable = q, true
			break
		}
	}
	if !routable {
		b.Fatal("no routable testbed query at noon")
	}
	partRect := func(p indoorpath.Point) indoorpath.Rect {
		for _, part := range v.Partitions() {
			r := part.Rect
			if part.Floor() == p.Floor && p.X >= r.MinX && p.X <= r.MaxX && p.Y >= r.MinY && p.Y <= r.MaxY {
				return r
			}
		}
		b.Fatalf("no partition contains %v", p)
		return indoorpath.Rect{}
	}
	srcRect, tgtRect := partRect(base.Source), partRect(base.Target)
	jitter := func(rng *rand.Rand, r indoorpath.Rect) indoorpath.Point {
		mx, my := r.Width()*0.1, r.Height()*0.1
		return indoorpath.Pt(
			r.MinX+mx+rng.Float64()*(r.Width()-2*mx),
			r.MinY+my+rng.Float64()*(r.Height()-2*my),
			r.Floor)
	}
	rng := rand.New(rand.NewSource(7))
	batch := make([]indoorpath.Query, 256)
	for i := range batch {
		batch[i] = indoorpath.Query{Source: jitter(rng, srcRect), Target: jitter(rng, tgtRect), At: base.At}
	}
	for _, mode := range []struct {
		name     string
		skeleton bool
	}{{"exact", false}, {"skeleton", true}} {
		b.Run(mode.name, func(b *testing.B) {
			pool := indoorpath.NewPool(tb.graph, indoorpath.PoolOptions{
				Engine:        indoorpath.Options{Method: indoorpath.MethodAsyn},
				Workers:       4,
				SkeletonCache: mode.skeleton,
			})
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				pool.InvalidateCache() // each iteration recomputes the crowd
				for _, r := range pool.RouteBatch(batch) {
					if r.Err != nil && r.Err != indoorpath.ErrNoRoute {
						b.Fatal(r.Err)
					}
				}
			}
			b.StopTimer()
			st := pool.Stats()
			b.ReportMetric(float64(st.SkeletonHits)/float64(b.N), "skeletonHits/op")
			b.ReportMetric(float64(st.EngineSearches)/float64(b.N), "searches/op")
			if secs := b.Elapsed().Seconds(); secs > 0 {
				b.ReportMetric(float64(b.N*len(batch))/secs, "queries/s")
			}
			if mode.skeleton {
				if st.SkeletonHits == 0 {
					b.Fatalf("jittered crowd composed nothing: %v", st)
				}
				if 2*st.EngineSearches > st.Queries {
					b.Fatalf("skeleton crowd did not halve engine searches: %v", st)
				}
			} else if st.SkeletonHits != 0 {
				b.Fatalf("skeleton hits without SkeletonCache: %v", st)
			}
		})
	}
}

// serverBenchSetup boots the HTTP serving stack (registry + server +
// httptest listener) over the synth-mall testbed with caching disabled,
// so every request is a real search and the delta against
// BenchmarkPoolRoute is pure HTTP/JSON overhead.
func serverBenchSetup(b *testing.B, tb *testbed, workers int) (*httptest.Server, [][]byte) {
	b.Helper()
	reg := indoorpath.NewVenueRegistry(indoorpath.PoolOptions{
		Workers:       workers,
		CacheCapacity: -1,
	})
	if err := reg.AddGraph("mall", tb.graph, "bench"); err != nil {
		b.Fatal(err)
	}
	ts := httptest.NewServer(indoorpath.NewServer(reg, indoorpath.ServerOptions{}))
	b.Cleanup(ts.Close)

	var qs []indoorpath.Query
	for hour := 0; hour <= 22; hour += 2 {
		qs = append(qs, tb.atTime(indoorpath.Clock(hour, 0, 0))...)
	}
	bodies := make([][]byte, len(qs))
	for i, q := range qs {
		body, err := json.Marshal(map[string]any{
			"from": map[string]any{"x": q.Source.X, "y": q.Source.Y, "floor": q.Source.Floor},
			"to":   map[string]any{"x": q.Target.X, "y": q.Target.Y, "floor": q.Target.Floor},
			"at":   q.At.String(),
		})
		if err != nil {
			b.Fatal(err)
		}
		bodies[i] = body
	}
	return ts, bodies
}

// BenchmarkServerRoute measures end-to-end HTTP serving throughput: N
// client goroutines POST /v1/venues/{id}/route against the daemon
// stack. Compare queries/s against BenchmarkPoolRoute to read off the
// HTTP/JSON overhead per query.
func BenchmarkServerRoute(b *testing.B) {
	tb := newTestbed(b, 5, 8, 1500, indoorpath.Clock(12, 0, 0))
	tb.graph.Snapshots().BuildAll()
	for _, workers := range []int{1, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			ts, bodies := serverBenchSetup(b, tb, workers)
			url := ts.URL + "/v1/venues/mall/route"
			client := ts.Client()
			post := func(body []byte) error {
				resp, err := client.Post(url, "application/json", bytes.NewReader(body))
				if err != nil {
					return err
				}
				_, _ = io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if resp.StatusCode != 200 {
					return fmt.Errorf("status %d", resp.StatusCode)
				}
				return nil
			}
			for _, body := range bodies { // warmup: engines, conns
				if err := post(body); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportAllocs()
			b.ResetTimer()
			var next atomic.Int64
			var wg sync.WaitGroup
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					for {
						n := int(next.Add(1)) - 1
						if n >= b.N {
							return
						}
						if err := post(bodies[n%len(bodies)]); err != nil {
							b.Error(err)
							return
						}
					}
				}()
			}
			wg.Wait()
			b.StopTimer()
			if secs := b.Elapsed().Seconds(); secs > 0 {
				b.ReportMetric(float64(b.N)/secs, "queries/s")
			}
		})
	}
}

// BenchmarkServerRouteBatch measures the batch endpoint: one POST
// /route:batch per iteration carrying the whole mixed-time batch (with
// a duplicate tail), fanned out server-side over the pool's workers.
func BenchmarkServerRouteBatch(b *testing.B) {
	tb := newTestbed(b, 5, 8, 1500, indoorpath.Clock(12, 0, 0))
	tb.graph.Snapshots().BuildAll()
	var qs []indoorpath.Query
	for hour := 0; hour <= 22; hour += 2 {
		qs = append(qs, tb.atTime(indoorpath.Clock(hour, 0, 0))...)
	}
	qs = append(qs, qs[:len(qs)/4]...) // duplicate tail: dedup work
	queries := make([]map[string]any, len(qs))
	for i, q := range qs {
		queries[i] = map[string]any{
			"from": map[string]any{"x": q.Source.X, "y": q.Source.Y, "floor": q.Source.Floor},
			"to":   map[string]any{"x": q.Target.X, "y": q.Target.Y, "floor": q.Target.Floor},
			"at":   q.At.String(),
		}
	}
	body, err := json.Marshal(map[string]any{"queries": queries})
	if err != nil {
		b.Fatal(err)
	}
	for _, workers := range []int{1, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			ts, _ := serverBenchSetup(b, tb, workers)
			url := ts.URL + "/v1/venues/mall/route:batch"
			client := ts.Client()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				resp, err := client.Post(url, "application/json", bytes.NewReader(body))
				if err != nil {
					b.Fatal(err)
				}
				_, _ = io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if resp.StatusCode != 200 {
					b.Fatalf("status %d", resp.StatusCode)
				}
			}
			b.StopTimer()
			if secs := b.Elapsed().Seconds(); secs > 0 {
				b.ReportMetric(float64(b.N*len(qs))/secs, "queries/s")
			}
		})
	}
}

// BenchmarkServerRouteCoalesced measures the standing cross-batch
// coalescer under its target workload: a burst of concurrent solo
// /route requests sharing one source and departure, each on its own
// HTTP request. With -coalesce semantics on (ServerOptions.Coalesce)
// the requests accumulate for a few milliseconds and flush as ONE
// shared engine run; caching is disabled so every answer must come
// from an engine, making Stats.EngineSearches/Queries the honest
// sharing ratio. Self-checks: searches per query < 0.5 on the
// 64-client burst, coalesced groups actually formed, and no hold
// pathologically exceeding the configured window.
func BenchmarkServerRouteCoalesced(b *testing.B) {
	const (
		clients = 64
		hold    = 5 * time.Millisecond
	)
	for _, coalesced := range []bool{false, true} {
		name := "coalesce=off"
		if coalesced {
			name = "coalesce=on"
		}
		b.Run(name, func(b *testing.B) {
			reg := indoorpath.NewVenueRegistry(indoorpath.PoolOptions{
				SharedBatch:   true,
				CacheCapacity: -1, // every query costs an engine unless a run is shared
			})
			if err := reg.Add("hospital", indoorpath.Hospital()); err != nil {
				b.Fatal(err)
			}
			ts := httptest.NewServer(indoorpath.NewServer(reg, indoorpath.ServerOptions{
				Coalesce:     coalesced,
				CoalesceHold: hold,
			}))
			b.Cleanup(ts.Close)
			url := ts.URL + "/v1/venues/hospital/route"
			client := ts.Client()

			// One source (the 24h ER entrance area), one departure, 64
			// distinct corridor targets: the canonical shareable-singleton
			// burst — every request alone justifies a full search, together
			// they justify one.
			bodies := make([][]byte, clients)
			for i := range bodies {
				body, err := json.Marshal(map[string]any{
					"from": map[string]any{"x": 30, "y": 10, "floor": 0},
					"to":   map[string]any{"x": 1 + float64(i)*0.9, "y": 24, "floor": 0},
					"at":   "11:00",
				})
				if err != nil {
					b.Fatal(err)
				}
				bodies[i] = body
			}
			post := func(body []byte) error {
				resp, err := client.Post(url, "application/json", bytes.NewReader(body))
				if err != nil {
					return err
				}
				_, _ = io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if resp.StatusCode != 200 {
					return fmt.Errorf("status %d", resp.StatusCode)
				}
				return nil
			}

			b.ReportAllocs()
			b.ResetTimer()
			for range b.N {
				var wg sync.WaitGroup
				errs := make(chan error, clients)
				for c := 0; c < clients; c++ {
					wg.Add(1)
					go func(c int) {
						defer wg.Done()
						if err := post(bodies[c]); err != nil {
							errs <- err
						}
					}(c)
				}
				wg.Wait()
				close(errs)
				for err := range errs {
					b.Fatal(err)
				}
			}
			b.StopTimer()

			var sr server.StatsResponse
			resp, err := client.Get(ts.URL + "/statsz")
			if err != nil {
				b.Fatal(err)
			}
			err = json.NewDecoder(resp.Body).Decode(&sr)
			resp.Body.Close()
			if err != nil {
				b.Fatal(err)
			}
			st := sr.Venues["hospital"].Methods["asyn"]
			queries := float64(st.Queries)
			if queries != float64(b.N*clients) {
				b.Fatalf("pool saw %v queries, want %d", queries, b.N*clients)
			}
			ratio := float64(st.EngineSearches) / queries
			b.ReportMetric(ratio, "searches/query")
			if secs := b.Elapsed().Seconds(); secs > 0 {
				b.ReportMetric(queries/secs, "queries/s")
			}
			if !coalesced {
				if st.EngineSearches != st.Queries {
					b.Fatalf("uncoalesced solo requests must each search: %+v", st)
				}
				return
			}
			// The acceptance bar: well under one engine run per query on
			// the shared-source burst.
			if ratio >= 0.5 {
				b.Fatalf("searches/query = %.3f, want < 0.5 (coalescing shared nothing): %+v", ratio, st)
			}
			cs := sr.Venues["hospital"].Coalesce["asyn"]
			if cs.Groups == 0 || cs.Answers == 0 {
				b.Fatalf("no coalesced groups recorded: %+v", cs)
			}
			// Latency bound sanity: holds are bounded by the window plus
			// scheduling noise; a max hold far beyond it means the flush
			// timer path is broken (generous grace for loaded CI runners).
			if maxHold := time.Duration(cs.MaxHoldNanos); maxHold > hold+time.Second {
				b.Fatalf("max hold %v far exceeds the %v window", maxHold, hold)
			}
			b.ReportMetric(float64(cs.MaxHoldNanos)/1e6, "max-hold-ms")
		})
	}
}

// BenchmarkGraphConstruction measures IT-Graph build cost (DM + labels)
// at paper scale.
func BenchmarkGraphConstruction(b *testing.B) {
	m, err := indoorpath.GenerateMall(indoorpath.MallConfig{Floors: 5, Seed: 42})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := indoorpath.NewGraph(m.Venue); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSnapshotAccess measures steady-state snapshot lookups (the
// per-check cost of the asynchronous method once Graph_Update has run
// for each slot) at paper scale.
func BenchmarkSnapshotAccess(b *testing.B) {
	m, err := indoorpath.GenerateMall(indoorpath.MallConfig{Floors: 5, Seed: 42})
	if err != nil {
		b.Fatal(err)
	}
	g, err := indoorpath.NewGraph(m.Venue)
	if err != nil {
		b.Fatal(err)
	}
	g.Snapshots().BuildAll()
	b.ReportAllocs()
	b.ResetTimer()
	n := 0
	for i := 0; i < b.N; i++ {
		snap := g.Snapshots().At(indoorpath.TimeOfDay(i % 86400))
		if snap.DoorOpen(indoorpath.DoorID(i % m.Venue.DoorCount())) {
			n++
		}
	}
	_ = n
}
